// Package vm executes compiled MiniC programs against the simulated memory,
// consulting a layout.Engine on every call to place the stack frame — the
// run-time half of the Smokestack system. The VM also maintains the cycle
// cost model that backs the paper's performance figures: every IR operation
// has a price, and each engine adds its instrumentation prices on top
// (prologue RNG + P-BOX lookup, per-GEP rebase, guard write/check).
//
// Memory behaves like a real process image: the stack is a real
// downward-growing region, locals are raw bytes at engine-chosen offsets,
// and out-of-bounds writes that stay within the stack segment silently
// corrupt neighbouring frames — the substrate DOP attacks require.
package vm

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/minic/sema"
	"repro/internal/rng"
)

// Fault categories surfaced as errors from Run.
type (
	// MemFault wraps a segmentation fault with execution context.
	MemFault struct {
		Func string
		PC   int
		Err  error
	}
	// GuardViolation reports a corrupted function-identifier slot detected
	// at epilogue — Smokestack's attack detection (§III-D2). Addr is the
	// absolute stack address of the corrupted slot (the nearest
	// attributable location: the check runs at epilogue, after the store
	// that corrupted the slot has long retired).
	GuardViolation struct {
		Func string
		Addr uint64
	}
	// CanaryViolation reports a corrupted per-frame canary slot detected at
	// epilogue (Stackato/StackGuard-style defenses). Addr is the canary
	// slot's absolute stack address.
	CanaryViolation struct {
		Func string
		Addr uint64
	}
	// ShadowStackViolation reports a frame return-token that no longer
	// matches the disjoint shadow stack at epilogue: backward-edge
	// corruption caught by shadow-stack defenses. Addr is the in-frame
	// return-token slot's absolute stack address.
	ShadowStackViolation struct {
		Func string
		Addr uint64
	}
	// StackOverflow reports frame allocation below the stack segment.
	StackOverflow struct {
		Func string
	}
	// DivideByZero reports integer division or modulo by zero.
	DivideByZero struct {
		Func string
		PC   int
	}
	// Aborted reports a call to the abort() builtin.
	Aborted struct{}
	// StepLimit reports that execution exceeded the instruction budget.
	StepLimit struct {
		Limit uint64
	}
	// EntropyFault reports that the layout engine's entropy source walked
	// its whole degradation ladder and went terminal while entering Func.
	// Randomizing a frame with known-dead randomness would silently void
	// the defense, so the run faults instead.
	EntropyFault struct {
		Func string
		Err  error
	}
	// Canceled reports that a context-supervised run (RunContext) was
	// stopped by its watchdog: deadline expiry or explicit cancellation.
	// Stats accumulated up to the stop remain valid partial results.
	Canceled struct {
		Cause error
	}
)

func (e *MemFault) Error() string {
	return fmt.Sprintf("%v in %s at pc=%d", e.Err, e.Func, e.PC)
}
func (e *MemFault) Unwrap() error { return e.Err }
func (e *GuardViolation) Error() string {
	return fmt.Sprintf("smokestack: function identifier check failed in %s (stack corruption detected)", e.Func)
}
func (e *CanaryViolation) Error() string {
	return fmt.Sprintf("canary check failed in %s (stack corruption detected)", e.Func)
}
func (e *ShadowStackViolation) Error() string {
	return fmt.Sprintf("shadow stack mismatch in %s (return linkage corrupted)", e.Func)
}
func (e *StackOverflow) Error() string { return fmt.Sprintf("stack overflow in %s", e.Func) }
func (e *DivideByZero) Error() string {
	return fmt.Sprintf("division by zero in %s at pc=%d", e.Func, e.PC)
}
func (e *Aborted) Error() string   { return "program aborted" }
func (e *StepLimit) Error() string { return fmt.Sprintf("instruction budget exceeded (%d)", e.Limit) }
func (e *EntropyFault) Error() string {
	return fmt.Sprintf("entropy failure entering %s: %v", e.Func, e.Err)
}
func (e *EntropyFault) Unwrap() error { return e.Err }
func (e *Canceled) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("execution canceled: %v", e.Cause)
	}
	return "execution canceled"
}
func (e *Canceled) Unwrap() error { return e.Cause }

// exitRequest unwinds the interpreter when the program calls exit().
type exitRequest struct{ code int64 }

func (e *exitRequest) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

// Costs prices IR operations in modeled cycles. Values approximate a simple
// in-order x86 pipeline; only *relative* magnitudes matter for the
// reproduced figures.
type Costs struct {
	ALU       float64 // add/sub/logic/compare/mov/const
	Mul       float64
	Div       float64
	Load      float64
	Store     float64
	Branch    float64
	AddrCalc  float64 // address formation (lea)
	CallBase  float64 // call+ret linkage, frame setup
	HostBase  float64 // host call trap overhead
	PerByte   float64 // bulk memory ops (memcpy etc.) per byte
	InputBase float64 // per input() record
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() Costs {
	return Costs{
		ALU:       1,
		Mul:       3,
		Div:       20,
		Load:      2,
		Store:     2,
		Branch:    1,
		AddrCalc:  1,
		CallBase:  6,
		HostBase:  12,
		PerByte:   0.25,
		InputBase: 40,
	}
}

// ExecTier selects the interpreter implementation. Both tiers execute the
// same IR with bit-identical results, cycle accounting and faults (the
// differential test and the invariance goldens enforce this); the compiled
// tier is simply faster.
type ExecTier int

const (
	// TierAuto consults SMOKESTACK_EXEC and defaults to the block tier.
	TierAuto ExecTier = iota
	// TierCompiled executes pre-decoded, fused cinstr streams (compile.go /
	// exec_compiled.go), sharing compiled programs through a CodeCache.
	TierCompiled
	// TierSwitch executes raw ir.Instr through the legacy switch
	// interpreter — the differential oracle the other tiers are checked
	// against.
	TierSwitch
	// TierBlock executes the threaded stream with profile-guided block
	// superinstructions layered on top (blocktier.go): hot straight-line
	// runs dispatch as one cinstr with a pre-summed cost and an amortized
	// step check, bit-identical to the other tiers by construction. Falls
	// back to TierCompiled semantics when the cost table is not
	// integer-valued or StepLimit exceeds 2^32 (see blocktier.go).
	TierBlock
)

// execTierEnv is the environment variable consulted by TierAuto. The
// recognized values are "switch", "threaded" (the plain compiled tier) and
// "block"; anything else (including unset) selects the block tier. Read
// per Machine, not cached at init, so tests can flip it with t.Setenv.
const execTierEnv = "SMOKESTACK_EXEC"

// ParseExecTier maps a SMOKESTACK_EXEC-style name to its tier: "switch",
// "threaded", "block", or "" / "auto" for TierAuto.
func ParseExecTier(s string) (ExecTier, bool) {
	switch s {
	case "", "auto":
		return TierAuto, true
	case "switch":
		return TierSwitch, true
	case "threaded":
		return TierCompiled, true
	case "block":
		return TierBlock, true
	}
	return TierAuto, false
}

// Options configure a Machine.
type Options struct {
	// Costs is the instruction cost model; zero value selects DefaultCosts.
	Costs *Costs
	// StepLimit bounds executed instructions (0 = default 500M).
	StepLimit uint64
	// MaxCallDepth bounds recursion (0 = default 4096).
	MaxCallDepth int
	// TRNG seeds the per-run guard key; defaults to rng.HostTRNG.
	TRNG rng.TRNG
	// JitterAmp enables the instruction-scheduling perturbation model: each
	// function's body cost is scaled by a deterministic per-function factor
	// in [1-JitterAmp, 1+JitterAmp] when running under a non-baseline
	// engine. Models the register-pressure speedups/slowdowns the paper
	// attributes to instrumentation-induced scheduling changes (§V-A).
	// 0 disables.
	JitterAmp float64
	// JitterSeed seeds the per-function jitter factors.
	JitterSeed uint64
	// HeapSize overrides the heap segment size (default 64 MiB).
	HeapSize uint64
	// Exec selects the execution tier (default TierAuto: block unless
	// SMOKESTACK_EXEC says otherwise).
	Exec ExecTier
	// CodeCache overrides the process-wide compiled-code cache (tests use
	// private caches to observe hit/miss counts). Ignored under TierSwitch.
	CodeCache *CodeCache
	// HostHook, when non-nil, observes every host (builtin) call on both
	// execution tiers: the fault injector uses it to delay, corrupt or
	// fail host calls deterministically. nil costs nothing.
	HostHook HostHook
	// EntropyCheck, when non-nil, is consulted on every function call after
	// the layout draw; a non-nil result faults the run with EntropyFault.
	// The harness wires rng.SourceErr of the engine's source here so a
	// terminally-exhausted entropy ladder stops the run at a call boundary
	// instead of silently derandomizing it. nil costs nothing.
	EntropyCheck func() error
	// Prof, when non-nil, attaches a cycle-attribution profile: the Machine
	// accumulates per-opcode and per-category attribution in plain fields
	// and flushes into Prof at Run/CallByName exit (see profile.go). nil is
	// the dormant default and costs a never-taken branch per site; the
	// cycle accumulator itself is never touched either way, so profiled
	// runs remain bit-identical to dormant ones.
	Prof *Profile
}

// Env is the host environment: attacker/user input and program output.
type Env struct {
	// Input services the input(buf, n) builtin: return at most max bytes.
	// nil yields zero bytes. The attack framework installs closures here —
	// this is the network boundary the attacker talks through.
	Input func(max int64) []byte
	// Ints services readint(); nil yields 0.
	Ints func() int64
	// Output receives bytes from print/prints/printc/outbyte/sendout.
	Output []byte
	// IODelayScale scales iodelay(n) cycles (1.0 default).
	IODelayScale float64
}

// Queue returns an Env whose Input pops successive records from the given
// chunks.
func Queue(chunks ...[]byte) *Env {
	i := 0
	e := &Env{}
	e.Input = func(max int64) []byte {
		if i >= len(chunks) {
			return nil
		}
		c := chunks[i]
		i++
		if int64(len(c)) > max {
			c = c[:max]
		}
		return c
	}
	return e
}

// Stats aggregates execution counters for the experiment harness.
type Stats struct {
	Cycles       float64
	Instructions uint64
	Calls        uint64
	MaxDepth     int
	MaxFrameSize int64
	HeapUsed     uint64
	StackPeak    uint64 // deepest stack extent in bytes
}

// frameRecord tracks one active invocation (used by attacks and
// diagnostics).
type frameRecord struct {
	fn       *ir.Function
	base     uint64
	ubase    uint64 // unsafe-region frame base (0 when single-region)
	layout   layout.FrameLayout
	savedSP  uint64
	savedUSP uint64
	// savedShadow is the shadow-stack depth at entry; popFrame truncates to
	// it, keeping the shadow balanced on every fault path.
	savedShadow int
}

// Machine executes one program run.
type Machine struct {
	Prog   *ir.Program
	Mem    *mem.Memory
	Engine layout.Engine
	Env    *Env

	costs     Costs
	stepLimit uint64
	maxDepth  int
	steps     uint64
	stats     Stats

	// costTable prices each opcode (built once in New from costs and the
	// engine's per-address-formation surcharge): the interpreter adds
	// costTable[op] instead of re-deriving the price per step. The values
	// and the accumulation order are bit-identical to the per-case
	// constants they replace — guarded by TestCycleInvariance.
	costTable [ir.NumOps]float64

	// ccode is the program's compiled instruction streams (nil under the
	// switch tier). Shared across Machines through a CodeCache — streams
	// depend only on (program, cost model, engine AddrLocal surcharge),
	// never on per-run state.
	ccode *compiledProgram

	// regSlabs and argSlabs pool the per-call register file and the
	// OpCall/OpCallHost argument scratch, indexed by call depth so nested
	// frames never alias. Slabs are cleared (registers) or fully
	// overwritten (args) on reuse, so behaviour matches fresh allocation.
	regSlabs [][]int64
	argSlabs [][]int64

	rodata     *mem.Segment
	globals    *mem.Segment
	heap       *mem.Segment
	stack      *mem.Segment
	globalAddr []uint64
	dataAddr   []uint64
	heapNext   uint64

	sp        uint64
	stackBase uint64
	stackTop  uint64

	// Unsafe (second) stack segment state: mapped only when the engine
	// implements layout.DualStacker; all zero/nil otherwise, in which case
	// every expression involving them reduces to the single-stack value.
	ustack     *mem.Segment
	usp        uint64
	unsafeBase uint64
	unsafeTop  uint64

	guardKey uint64
	// canaryKey/shadowKey back SlotCanary writes and SlotReturn tokens.
	// Both derive deterministically from guardKey (splitmix steps), so
	// engines using them consume no extra TRNG draws — existing engines'
	// entropy streams are untouched.
	canaryKey uint64
	shadowKey uint64
	// shadow is the disjoint shadow return stack: one token per live
	// SlotReturn slot, invisible to simulated memory (the leak-resilience
	// property).
	shadow []uint64
	// effSlabs pools per-depth effective-offset scratch for multi-region
	// frames: offsets rebased so base+offset lands in the right region,
	// letting the call-free compiled cores run unchanged.
	effSlabs [][]int64

	jitter []float64 // per-function cost multiplier (nil when disabled)

	frames []frameRecord

	// initErr records a construction-time failure (segment mapping, guard
	// key entropy). New cannot return an error without breaking every call
	// site, so the first Run/CallByName surfaces it instead.
	initErr error

	hostHook     HostHook
	entropyCheck func() error

	// watchdog/interrupted implement RunContext's cancellation: when armed,
	// both exec tiers re-check interrupted every supervisionInterval steps
	// at a resumable chunk boundary. Dormant (watchdog false) the chunk
	// boundary equals the step limit and behaviour is bit-identical.
	watchdog    bool
	interrupted atomic.Bool

	// Cycle-attribution accumulators (see profile.go). All nil/zero when
	// no Profile is attached; the hot paths only ever test prof (or the
	// hoisted profPN slice) for nil. profW/profN hold the switch tier's
	// weighted per-op counts; profPN holds the compiled core's raw per-cop
	// dispatch counts for the current invocation, folded with the
	// invocation's jitter multiplier into profCW/profCN at call
	// boundaries. profCat buckets instrumentation cycles captured in
	// call()/hostCall. profMemHits/profMemMisses are last-flushed
	// baselines for the Memory segment-cache counters.
	prof           *Profile
	profProlog     PrologueProfiler
	profDefense    DefenseProfiler
	addrExtra      float64
	profW          [ir.NumOps]float64
	profN          [ir.NumOps]uint64
	profPN         []uint64
	profCW         []float64
	profCN         []uint64
	profCat        [numProfCats]profAgg
	profCalls      uint64
	profHostCalls  uint64
	profHostCycles float64
	profMemSlow    uint64
	profFrameReuse uint64
	profFrameAlloc uint64
	profMemHits    uint64
	profMemMisses  uint64

	// bbCount, when non-nil, makes the switch interpreter count executions
	// per function (outer index ir.Function.ID) and IR pc — the block
	// tier's one-shot profiling pre-run (blocktier.go) attaches it to find
	// hot basic blocks. Nil on every ordinary Machine: the hot loop pays a
	// hoisted nil check, same discipline as the profiler fields.
	bbCount [][]uint64

	// Pooled-reuse plumbing (reset.go / pool.go). tier is the resolved
	// execution tier and codeCache the resolved cache — construction-time
	// choices a Reset cannot change, recorded so it can verify
	// compatibility and re-look-up compiled streams when the engine
	// surcharge changes. armed marks that the engine-dependent pricing
	// state (cost table, ccode) has been built at least once; jitterBuf is
	// the retained backing for the jitter table so re-arming with jitter
	// allocates only on first use.
	tier      ExecTier
	codeCache *CodeCache
	armed     bool
	jitterBuf []float64

	// hostBuf/hostBuf2 are reusable staging buffers for host builtins that
	// move byte ranges through Go (strcpy, memcpy, strcmp, ...): with them
	// the whole builtin surface allocates nothing in steady state. Contents
	// are never observable across calls, so Reset leaves them alone.
	hostBuf  []byte
	hostBuf2 []byte
}

// supervisionInterval is the step count between watchdog polls while a
// RunContext watchdog is armed. Small enough to stop a runaway loop within
// microseconds of wall-clock cancellation, large enough to keep the poll
// invisible in the dispatch loop.
const supervisionInterval = 32768

// supNext returns the next supervised chunk boundary after steps, capped at
// the real budget.
func supNext(steps, limit uint64) uint64 {
	next := steps + supervisionInterval
	if next > limit || next < steps {
		next = limit
	}
	return next
}

// normalizeOptions applies New's defaulting rules to opts (without
// mutating the caller's struct): zero values become the documented
// defaults and the heap size is clamped below the lowest stack segment.
// Shared with the pool key computation and Machine.Reset, which must both
// see exactly the options a corresponding New would run with.
func normalizeOptions(engine layout.Engine, opts *Options) Options {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if o.StepLimit == 0 {
		o.StepLimit = 500_000_000
	}
	if o.MaxCallDepth == 0 {
		o.MaxCallDepth = 4096
	}
	if o.TRNG == nil {
		o.TRNG = rng.HostTRNG
	}
	if o.HeapSize == 0 {
		o.HeapSize = 64 << 20
	}
	// Clamp the heap below the lowest stack segment: an oversized request
	// shrinks to the available address range instead of failing
	// construction. Dual-stack engines add the unsafe segment below the
	// main stack, lowering the ceiling.
	stackFloor := uint64(mem.StackTop - mem.StackSize)
	if _, ok := engine.(layout.DualStacker); ok {
		stackFloor = uint64(mem.UnsafeStackTop - mem.UnsafeStackSize)
	}
	if maxHeap := stackFloor - mem.HeapBase; o.HeapSize > maxHeap {
		o.HeapSize = maxHeap
	}
	return o
}

// costsOf resolves the cost model a normalized Options selects.
func costsOf(o *Options) Costs {
	if o.Costs != nil {
		return *o.Costs
	}
	return DefaultCosts()
}

// resolveTier resolves TierAuto (environment, default block) and applies
// the block tier's step-limit fallback, yielding the tier the Machine
// actually runs.
func resolveTier(o *Options) ExecTier {
	tier := o.Exec
	if tier == TierAuto {
		if t, ok := ParseExecTier(os.Getenv(execTierEnv)); ok && t != TierAuto {
			tier = t
		} else {
			tier = TierBlock
		}
	}
	// The block tier's exact pre-summed costs need the in-core cycle
	// accumulator to stay in float64's exact-integer range; huge step
	// limits fall back to the threaded tier's per-constituent accounting
	// (bit-identical, just unaccelerated).
	if tier == TierBlock && o.StepLimit > blockMaxStepLimit {
		tier = TierCompiled
	}
	return tier
}

// New prepares a Machine for one run of prog under engine. The engine's
// NewRun is invoked (drawing per-run randomness such as the stack bias).
func New(prog *ir.Program, engine layout.Engine, env *Env, opts *Options) *Machine {
	o := normalizeOptions(engine, opts)
	if env == nil {
		env = &Env{}
	}
	if env.IODelayScale == 0 {
		env.IODelayScale = 1
	}

	m := &Machine{
		Prog:      prog,
		Mem:       mem.New(),
		Engine:    engine,
		Env:       env,
		costs:     costsOf(&o),
		stepLimit: o.StepLimit,
		maxDepth:  o.MaxCallDepth,
	}
	m.tier = resolveTier(&o)
	m.codeCache = o.CodeCache
	if m.codeCache == nil {
		m.codeCache = defaultCodeCache
	}

	// Rodata: interned strings. Program images with fuzzer-scale data or
	// global sections can exceed their address windows; a mapping failure
	// is recorded as a typed initErr (surfaced by the first Run) instead of
	// panicking inside the segment allocator.
	var dataSize uint64
	for _, d := range prog.Data {
		dataSize += uint64(len(d)) + 8
	}
	if dataSize < 16 {
		dataSize = 16
	}
	var err error
	if m.rodata, err = m.Mem.Map("rodata", mem.RodataBase, dataSize, false); err != nil {
		m.initErr = fmt.Errorf("vm: program image: %w", err)
		return m
	}
	addr := uint64(mem.RodataBase)
	for _, d := range prog.Data {
		m.dataAddr = append(m.dataAddr, addr)
		copy(m.rodata.Bytes()[addr-mem.RodataBase:], d)
		addr += uint64(len(d))
		addr = (addr + 7) &^ 7
	}

	// Globals.
	var globSize uint64
	for _, g := range prog.Globals {
		globSize = alignU(globSize, uint64(g.Align)) + uint64(g.Size)
	}
	if globSize < 16 {
		globSize = 16
	}
	if m.globals, err = m.Mem.Map("globals", mem.GlobalBase, globSize, true); err != nil {
		m.initErr = fmt.Errorf("vm: program image: %w", err)
		return m
	}
	addr = mem.GlobalBase
	for _, g := range prog.Globals {
		addr = alignU(addr, uint64(g.Align))
		m.globalAddr = append(m.globalAddr, addr)
		copy(m.globals.Bytes()[addr-mem.GlobalBase:], g.Init)
		addr += uint64(g.Size)
	}

	// The heap's 64 MiB backing is materialized on first access: runs that
	// never touch the heap (most workloads) skip the allocation entirely.
	if m.heap, err = m.Mem.MapLazy("heap", mem.HeapBase, o.HeapSize, true); err != nil {
		m.initErr = fmt.Errorf("vm: program image: %w", err)
		return m
	}
	m.heapNext = mem.HeapBase

	if m.stack, err = m.Mem.Map("stack", mem.StackTop-mem.StackSize, mem.StackSize, true); err != nil {
		m.initErr = fmt.Errorf("vm: program image: %w", err)
		return m
	}
	m.stackBase = mem.StackTop - mem.StackSize

	// Dual-stack engines get the segregated "unsafe" segment with its own
	// per-run bias; for everyone else ustack stays nil and unsafeTop/usp
	// stay 0, leaving segment lists, digests and stack accounting exactly
	// as before the region seam existed.
	_, dualStack := engine.(layout.DualStacker)
	if dualStack {
		if m.ustack, err = m.Mem.Map("ustack", mem.UnsafeStackTop-mem.UnsafeStackSize, mem.UnsafeStackSize, true); err != nil {
			m.initErr = fmt.Errorf("vm: program image: %w", err)
			return m
		}
		m.unsafeBase = mem.UnsafeStackTop - mem.UnsafeStackSize
	}

	m.arm(engine, env, &o)
	return m
}

// arm applies the per-run half of construction: engine rebias, guard-key
// draw and derived keys, engine-dependent pricing state, profiler
// attachment and the jitter table. Shared verbatim between New and Reset
// so a reset Machine's observable behaviour — including the TRNG draw
// sequence — is bit-identical to a freshly constructed one.
func (m *Machine) arm(engine layout.Engine, env *Env, o *Options) {
	m.Engine = engine
	m.Env = env
	m.hostHook = o.HostHook
	m.entropyCheck = o.EntropyCheck

	engine.NewRun()
	m.stackTop = mem.StackTop - engine.StackBias()
	m.sp = m.stackTop
	if ds, ok := engine.(layout.DualStacker); ok {
		m.unsafeTop = mem.UnsafeStackTop - ds.UnsafeBias()
		m.usp = m.unsafeTop
	}
	m.stats.StackPeak = 0
	// The guard key must be unpredictable; retry a failing TRNG a bounded
	// number of times, then fault construction rather than running with a
	// known (zero) key.
	const guardKeyRetries = 8
	keyed := false
	for i := 0; i <= guardKeyRetries && !keyed; i++ {
		if v, ok := o.TRNG(); ok {
			m.guardKey = v
			keyed = true
		}
	}
	if !keyed {
		m.initErr = &EntropyFault{Func: "init (guard key)", Err: rng.ErrEntropyExhausted}
		return
	}
	// Canary and shadow keys derive deterministically from the guard key:
	// engines using those slots consume no extra TRNG draws, so every
	// pre-existing engine's entropy stream is bit-identical to before.
	m.canaryKey = splitmix64(m.guardKey)
	m.shadowKey = splitmix64(m.canaryKey)

	// Engine-dependent pricing state. Streams and tables depend on the
	// engine only through its AddrLocal surcharge, so a reset that swaps
	// engines within the same surcharge (the common grid pattern:
	// baseline, then each scheme) skips the rebuild and the cache lookup
	// entirely.
	if ae := engine.AddrLocalExtraCycles(); !m.armed || ae != m.addrExtra {
		m.addrExtra = ae
		m.buildCostTable()
		switch m.tier {
		case TierBlock:
			m.ccode = m.codeCache.blockCompiled(m.Prog, m.costs, ae, m.globalAddr, m.dataAddr)
		case TierCompiled:
			m.ccode = m.codeCache.compiled(m.Prog, m.costs, ae, m.globalAddr, m.dataAddr)
		}
	}
	m.armed = true

	m.prof = o.Prof
	m.profProlog, m.profDefense = nil, nil
	if o.Prof != nil {
		if pp, ok := engine.(PrologueProfiler); ok {
			m.profProlog = pp
		}
		if dp, ok := engine.(DefenseProfiler); ok {
			m.profDefense = dp
		}
		// Per-cop slabs for the compiled tier's dispatch counts. Allocated
		// once per Machine (and retained across resets), so attaching a
		// profile adds zero per-step and zero per-call allocations
		// (TestProfileAllocs pins this).
		if m.profPN == nil {
			m.profPN = make([]uint64, numCops)
			m.profCW = make([]float64, numCops)
			m.profCN = make([]uint64, numCops)
		}
	}

	if o.JitterAmp > 0 && engine.Name() != "fixed" {
		n := len(m.Prog.Funcs)
		if cap(m.jitterBuf) < n {
			m.jitterBuf = make([]float64, n)
		}
		m.jitter = m.jitterBuf[:n]
		s := o.JitterSeed
		for i := range m.jitter {
			s += 0x9e3779b97f4a7c15
			z := s
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			// Uniform in [1-amp, 1+amp].
			u := float64(z%100001)/100000*2 - 1
			m.jitter[i] = 1 + u*o.JitterAmp
		}
	} else {
		m.jitter = nil
	}
}

// buildCostTable fills the per-opcode price table from the cost model and
// the engine's AddrLocal surcharge. It delegates to buildCostTableFrom —
// the single source of truth shared with the bytecode compiler, so both
// tiers price instructions from identical float values.
func (m *Machine) buildCostTable() {
	m.costTable = buildCostTableFrom(&m.costs, m.Engine.AddrLocalExtraCycles())
}

// regSlab returns a zeroed register file for a frame at the given call
// depth. Slabs are pooled per depth (nested frames never share) and
// cleared on reuse, so a recycled slab is indistinguishable from a fresh
// allocation.
func (m *Machine) regSlab(depth, n int) []int64 {
	for len(m.regSlabs) <= depth {
		m.regSlabs = append(m.regSlabs, nil)
	}
	s := m.regSlabs[depth]
	if cap(s) < n {
		if m.prof != nil {
			m.profFrameAlloc++
		}
		s = make([]int64, n)
		m.regSlabs[depth] = s
		return s
	}
	if m.prof != nil {
		m.profFrameReuse++
	}
	s = s[:n]
	clear(s)
	return s
}

// argSlab returns an argument scratch buffer for a call issued at the
// given depth. The caller fully overwrites all n slots before use, and the
// buffer is consumed (spilled to simulated memory or read by the host
// call) before any nested call at the same depth can reuse it.
func (m *Machine) argSlab(depth, n int) []int64 {
	for len(m.argSlabs) <= depth {
		m.argSlabs = append(m.argSlabs, nil)
	}
	s := m.argSlabs[depth]
	if cap(s) < n {
		if m.prof != nil {
			m.profFrameAlloc++
		}
		s = make([]int64, n)
		m.argSlabs[depth] = s
		return s
	}
	if m.prof != nil {
		m.profFrameReuse++
	}
	return s[:n]
}

func alignU(n, a uint64) uint64 {
	if a <= 1 {
		return n
	}
	if rem := n % a; rem != 0 {
		return n + a - rem
	}
	return n
}

// splitmix64 is the standard 64-bit finalizing mixer; derives the canary
// and shadow keys from the guard key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// notePeak folds the current extent of both stacks into StackPeak. For
// single-stack engines unsafeTop and usp are both 0, so the value reduces
// to the pre-refactor stackTop-sp expression bit for bit.
func (m *Machine) notePeak() {
	if peak := m.stackTop - m.sp + (m.unsafeTop - m.usp); peak > m.stats.StackPeak {
		m.stats.StackPeak = peak
	}
}

// Stats returns execution counters accumulated so far.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.Instructions = m.steps
	s.HeapUsed = m.heapNext - mem.HeapBase
	return s
}

// ResidentBytes models the process's maximum resident set: program image
// (rodata + globals + scheme rodata such as the P-BOX) plus touched heap and
// peak stack. This backs the Fig 4 memory overhead comparison.
func (m *Machine) ResidentBytes() int64 {
	return int64(m.rodata.Size()) + int64(m.globals.Size()) +
		int64(m.heapNext-mem.HeapBase) + int64(m.stats.StackPeak) +
		m.Engine.RodataBytes()
}

// GlobalAddr returns the address of global index i.
func (m *Machine) GlobalAddr(i int) uint64 { return m.globalAddr[i] }

// GlobalAddrByName resolves a global's address by name.
func (m *Machine) GlobalAddrByName(name string) (uint64, bool) {
	for i, g := range m.Prog.Globals {
		if g.Name == name {
			return m.globalAddr[i], true
		}
	}
	return 0, false
}

// ActiveFrames returns the live call stack (innermost last). Attack code
// uses this to model pointers an attacker has disclosed from memory.
func (m *Machine) ActiveFrames() []ActiveFrame {
	out := make([]ActiveFrame, len(m.frames))
	for i, fr := range m.frames {
		out[i] = ActiveFrame{Fn: fr.fn, Base: fr.base, UnsafeBase: fr.ubase, Layout: fr.layout}
	}
	return out
}

// ActiveFrame is one live invocation.
type ActiveFrame struct {
	Fn   *ir.Function
	Base uint64
	// UnsafeBase is the frame's base in the unsafe stack region (0 when the
	// layout is single-region). Offsets of allocas with Region(i) ==
	// layout.RegionUnsafe are relative to it.
	UnsafeBase uint64
	Layout     layout.FrameLayout
}

// InitErr reports a construction-time failure (segment mapping, guard-key
// entropy), or nil. Run and CallByName return it as well; this accessor
// lets callers fail fast without issuing a run.
func (m *Machine) InitErr() error { return m.initErr }

// Run executes main and returns its value. Faults, guard violations and
// aborts are returned as errors; exit(n) returns n with a nil error.
func (m *Machine) Run() (int64, error) {
	if m.initErr != nil {
		return 0, m.initErr
	}
	fn, ok := m.Prog.FuncByName("main")
	if !ok {
		return 0, fmt.Errorf("vm: program %s has no main", m.Prog.Name)
	}
	if m.prof != nil {
		defer m.flushProfile()
	}
	v, err := m.call(fn, nil)
	if err != nil {
		var exit *exitRequest
		if e, ok := err.(*exitRequest); ok { //nolint:errorlint // internal sentinel, never wrapped
			exit = e
			return exit.code, nil
		}
		return 0, err
	}
	return v, nil
}

// RunContext executes main under a watchdog: when ctx carries a deadline or
// is cancelable, both execution tiers poll for cancellation every
// supervisionInterval steps at a resumable chunk boundary and return a
// *Canceled (with partial Stats intact) once the context ends. A background
// context runs exactly like Run.
func (m *Machine) RunContext(ctx context.Context) (int64, error) {
	if m.initErr != nil {
		return 0, m.initErr
	}
	if ctx == nil || ctx.Done() == nil {
		return m.Run()
	}
	if ctx.Err() != nil {
		return 0, &Canceled{Cause: context.Cause(ctx)}
	}
	m.watchdog = true
	m.interrupted.Store(false)
	stop := context.AfterFunc(ctx, func() { m.interrupted.Store(true) })
	defer func() {
		stop()
		m.watchdog = false
	}()
	v, err := m.Run()
	var c *Canceled
	if errors.As(err, &c) && c.Cause == nil {
		c.Cause = context.Cause(ctx)
	}
	return v, err
}

// CallByName invokes an arbitrary function (used by tests and harnesses).
func (m *Machine) CallByName(name string, args ...int64) (int64, error) {
	if m.initErr != nil {
		return 0, m.initErr
	}
	fn, ok := m.Prog.FuncByName(name)
	if !ok {
		return 0, fmt.Errorf("vm: no function %s", name)
	}
	if m.prof != nil {
		defer m.flushProfile()
	}
	v, err := m.call(fn, args)
	if err != nil {
		if e, ok := err.(*exitRequest); ok { //nolint:errorlint // internal sentinel
			return e.code, nil
		}
		return 0, err
	}
	return v, nil
}

// call allocates a frame per the engine's layout and interprets fn.
func (m *Machine) call(fn *ir.Function, args []int64) (int64, error) {
	if len(m.frames) >= m.maxDepth {
		return 0, &StackOverflow{Func: fn.Name}
	}
	fl := m.Engine.Layout(fn)
	// The layout draw above may have pushed the engine's entropy source
	// onto the terminal rung of its ladder; randomizing with dead entropy
	// silently voids the defense, so the configured policy faults here.
	// This check is tier-shared (both executors route calls through here),
	// keeping faulted runs bit-identical across tiers.
	if m.entropyCheck != nil {
		if err := m.entropyCheck(); err != nil {
			return 0, &EntropyFault{Func: fn.Name, Err: err}
		}
	}
	savedSP := m.sp
	base := (m.sp - uint64(fl.Size)) &^ 15
	if base < m.stackBase {
		return 0, &StackOverflow{Func: fn.Name}
	}
	m.sp = base
	// Multi-region frames additionally carve a frame from the unsafe stack.
	var ubase uint64
	savedUSP := m.usp
	if fl.Regions != nil {
		ubase = (m.usp - uint64(fl.UnsafeSize)) &^ 15
		if ubase < m.unsafeBase {
			m.sp = savedSP
			return 0, &StackOverflow{Func: fn.Name}
		}
		m.usp = ubase
	}
	m.notePeak()
	m.stats.Calls++
	if d := len(m.frames) + 1; d > m.stats.MaxDepth {
		m.stats.MaxDepth = d
	}
	if fl.Size > m.stats.MaxFrameSize {
		m.stats.MaxFrameSize = fl.Size
	}
	m.frames = append(m.frames, frameRecord{
		fn: fn, base: base, ubase: ubase, layout: fl,
		savedSP: savedSP, savedUSP: savedUSP, savedShadow: len(m.shadow),
	})

	// Effective offsets: for single-region layouts these are the layout's
	// offsets verbatim (no copy, no extra work). Multi-region layouts get a
	// pooled slab with unsafe-region offsets rebased so base+offset (mod
	// 2^64) lands at ubase+offset inside the unsafe segment — the executors
	// and their call-free compiled cores run unchanged either way.
	offsets := fl.Offsets
	if fl.Regions != nil {
		offsets = m.effSlab(len(m.frames)-1, len(fl.Offsets))
		for i, off := range fl.Offsets {
			if fl.Regions[i] == layout.RegionUnsafe {
				offsets[i] = int64(ubase + uint64(off) - base)
			} else {
				offsets[i] = off
			}
		}
	}

	// Spill arguments into their (permuted) allocas. Param allocas always
	// live in the frame, i.e. the stack segment, so the direct segment view
	// is the common path (same pattern as the integrity-slot write below);
	// the general WriteU handles unsafe-region params and produces the
	// fault otherwise.
	for i := 0; i < fn.NumParams && i < len(args); i++ {
		w := int(fn.Allocas[i].Size)
		if w > 8 {
			w = 8
		}
		if !m.stack.WriteUAt(base+uint64(offsets[i]), w, uint64(args[i])) {
			if err := m.Mem.WriteU(base+uint64(offsets[i]), w, uint64(args[i])); err != nil {
				m.popFrame()
				return 0, &MemFault{Func: fn.Name, PC: -1, Err: err}
			}
		}
	}
	// Write the integrity slots. Slots always lie in the main frame, i.e.
	// the stack segment, so the direct segment view is the common path; the
	// general WriteU produces the fault otherwise.
	for _, s := range fl.SlotsView() {
		var val uint64
		switch s.Kind {
		case layout.SlotGuard:
			// Smokestack's encoded function identifier (§III-D2).
			val = m.guardKey ^ uint64(fn.ID)
		case layout.SlotCanary:
			val = m.canaryKey ^ uint64(fn.ID)
		case layout.SlotReturn:
			// Per-invocation token, mirrored between the frame slot and the
			// disjoint shadow stack (popFrame truncates to savedShadow, so
			// fault paths stay balanced).
			val = m.shadowKey ^ (uint64(len(m.shadow)+1) * 0x9e3779b97f4a7c15)
			m.shadow = append(m.shadow, val)
		}
		saddr := base + uint64(s.Offset)
		if !m.stack.WriteU64At(saddr, val) {
			if err := m.Mem.WriteU(saddr, 8, val); err != nil {
				m.popFrame()
				return 0, &MemFault{Func: fn.Name, PC: -1, Err: err}
			}
		}
	}
	// The prologue price is captured in a local so an attached profiler can
	// bucket it without a second engine call; the stats accumulation below
	// performs the exact float operations of the original
	// `CallBase + PrologueCycles(fn)` expression, keeping cycles
	// bit-identical whether or not a profile is attached.
	pro := m.Engine.PrologueCycles(fn)
	m.stats.Cycles += m.costs.CallBase + pro
	if m.prof != nil {
		m.profCalls++
		if m.profProlog != nil {
			draw, lookup, guard, spread := m.profProlog.PrologueBreakdown(fn)
			m.profCat[catDraw].Count++
			m.profCat[catDraw].Cycles += draw
			m.profCat[catLookup].Count++
			m.profCat[catLookup].Cycles += lookup
			if guard != 0 {
				m.profCat[catGuardWrite].Count++
				m.profCat[catGuardWrite].Cycles += guard
			}
			if spread != 0 {
				m.profCat[catSpread].Count++
				m.profCat[catSpread].Cycles += spread
			}
		} else if m.profDefense != nil {
			draw, cw, spush, rebase, _, _ := m.profDefense.DefenseBreakdown(fn)
			if draw != 0 {
				m.profCat[catDraw].Count++
				m.profCat[catDraw].Cycles += draw
			}
			if cw != 0 {
				m.profCat[catCanaryWrite].Count++
				m.profCat[catCanaryWrite].Cycles += cw
			}
			if spush != 0 {
				m.profCat[catShadowPush].Count++
				m.profCat[catShadowPush].Cycles += spush
			}
			if rebase != 0 {
				m.profCat[catUnsafeRebase].Count++
				m.profCat[catUnsafeRebase].Cycles += rebase
			}
			if rest := pro - draw - cw - spush - rebase; rest != 0 {
				m.profCat[catPrologueOther].Count++
				m.profCat[catPrologueOther].Cycles += rest
			}
		} else if pro != 0 {
			m.profCat[catPrologueOther].Count++
			m.profCat[catPrologueOther].Cycles += pro
		}
	}

	var ret int64
	var err error
	if m.ccode != nil {
		ret, err = m.execCompiled(fn, &m.ccode.funcs[fn.ID], base, offsets)
		if m.prof != nil {
			// Fold this invocation's pending compiled-core dispatch counts
			// with its jitter multiplier (partial counts from a faulted run
			// included — their cycles were charged before the fault).
			m.flushPending(fn)
		}
	} else {
		ret, err = m.exec(fn, base, offsets)
	}
	if err != nil {
		m.popFrame()
		return 0, err
	}
	// Epilogue integrity checks (stack-segment view, same fallback as
	// above); each slot kind raises its own typed fault.
	for _, s := range fl.SlotsView() {
		saddr := base + uint64(s.Offset)
		v, ok := m.stack.ReadU64At(saddr)
		if !ok {
			var merr error
			v, merr = m.Mem.ReadU(saddr, 8)
			if merr != nil {
				m.popFrame()
				return 0, &MemFault{Func: fn.Name, PC: -1, Err: merr}
			}
		}
		switch s.Kind {
		case layout.SlotGuard:
			if v != m.guardKey^uint64(fn.ID) {
				m.popFrame()
				return 0, &GuardViolation{Func: fn.Name, Addr: saddr}
			}
		case layout.SlotCanary:
			if v != m.canaryKey^uint64(fn.ID) {
				m.popFrame()
				return 0, &CanaryViolation{Func: fn.Name, Addr: saddr}
			}
		case layout.SlotReturn:
			if len(m.shadow) == 0 || v != m.shadow[len(m.shadow)-1] {
				m.popFrame()
				return 0, &ShadowStackViolation{Func: fn.Name, Addr: saddr}
			}
		}
	}
	epi := m.Engine.EpilogueCycles(fn)
	m.stats.Cycles += epi
	if m.prof != nil && epi != 0 {
		if m.profDefense != nil {
			_, _, _, _, ccheck, scheck := m.profDefense.DefenseBreakdown(fn)
			if ccheck != 0 {
				m.profCat[catCanaryCheck].Count++
				m.profCat[catCanaryCheck].Cycles += ccheck
			}
			if scheck != 0 {
				m.profCat[catShadowCheck].Count++
				m.profCat[catShadowCheck].Cycles += scheck
			}
			if rest := epi - ccheck - scheck; rest != 0 {
				m.profCat[catGuardCheck].Count++
				m.profCat[catGuardCheck].Cycles += rest
			}
		} else {
			m.profCat[catGuardCheck].Count++
			m.profCat[catGuardCheck].Cycles += epi
		}
	}
	m.popFrame()
	return ret, nil
}

func (m *Machine) popFrame() {
	fr := m.frames[len(m.frames)-1]
	m.sp = fr.savedSP
	m.usp = fr.savedUSP
	if len(m.shadow) > fr.savedShadow {
		m.shadow = m.shadow[:fr.savedShadow]
	}
	m.frames = m.frames[:len(m.frames)-1]
}

// effSlab returns an effective-offsets scratch slab for a multi-region
// frame at the given depth; the caller fully overwrites all n slots. Same
// pooling discipline as regSlab/argSlab.
func (m *Machine) effSlab(depth, n int) []int64 {
	for len(m.effSlabs) <= depth {
		m.effSlabs = append(m.effSlabs, nil)
	}
	s := m.effSlabs[depth]
	if cap(s) < n {
		s = make([]int64, n)
		m.effSlabs[depth] = s
		return s
	}
	return s[:n]
}

// exec interprets the function body. This is the simulator's innermost
// loop; it works on pooled register slabs, prices instructions through the
// per-opcode cost table, keeps the step counter in a local (synced around
// calls and on exit), and routes loads/stores through the segment-cached
// fast path. None of that changes a modeled cycle — TestCycleInvariance
// pins the accounting bit-for-bit.
func (m *Machine) exec(fn *ir.Function, base uint64, offsets []int64) (int64, error) {
	regs := m.regSlab(len(m.frames)-1, fn.NumRegs)
	code := fn.Code
	costMul := 1.0
	if m.jitter != nil {
		costMul = m.jitter[fn.ID]
	}
	ct := &m.costTable
	mm := m.Mem
	// Hoisted profiling pointers: nil when dormant, so each of the four
	// counting sites below is a single predictable never-taken branch and
	// the cycle accounting is untouched either way.
	var pw *[ir.NumOps]float64
	var pnn *[ir.NumOps]uint64
	if m.prof != nil {
		pw, pnn = &m.profW, &m.profN
	}
	// Per-pc execution counts for the block tier's profiling pre-run
	// (blocktier.go). Same hoisted-nil discipline as the profiler.
	var bb []uint64
	if m.bbCount != nil {
		bb = m.bbCount[fn.ID]
	}
	cycles := 0.0
	steps, limit := m.steps, m.stepLimit
	// next is the supervised chunk boundary: with the watchdog dormant it
	// equals limit and this loop is bit-identical to the unsupervised one;
	// armed, it forces a cancellation poll every supervisionInterval steps.
	next := limit
	if m.watchdog {
		next = supNext(steps, limit)
	}
	pc := 0
	defer func() {
		m.steps = steps
		m.stats.Cycles += cycles * costMul
	}()
	for {
		if steps >= next {
			if steps >= limit {
				return 0, &StepLimit{Limit: limit}
			}
			if m.interrupted.Load() {
				return 0, &Canceled{}
			}
			next = supNext(steps, limit)
		}
		steps++
		if bb != nil {
			bb[pc]++
		}
		in := &code[pc]
		op := in.Op
		switch op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
		case ir.OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case ir.OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case ir.OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case ir.OpDiv:
			if regs[in.B] == 0 {
				// Count-only attribution of the faulting dispatch: the loop
				// head consumed its step but no cycles were charged, so the
				// count keeps the profile's op rows summing to
				// Stats.Instructions while adding zero cycles (pnn without
				// pw).
				if pnn != nil {
					pnn[op]++
				}
				return 0, &DivideByZero{Func: fn.Name, PC: pc}
			}
			regs[in.Dst] = regs[in.A] / regs[in.B]
		case ir.OpMod:
			if regs[in.B] == 0 {
				if pnn != nil {
					pnn[op]++
				}
				return 0, &DivideByZero{Func: fn.Name, PC: pc}
			}
			regs[in.Dst] = regs[in.A] % regs[in.B]
		case ir.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case ir.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case ir.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case ir.OpShl:
			regs[in.Dst] = regs[in.A] << (uint64(regs[in.B]) & 63)
		case ir.OpShr:
			regs[in.Dst] = regs[in.A] >> (uint64(regs[in.B]) & 63)
		case ir.OpNeg:
			regs[in.Dst] = -regs[in.A]
		case ir.OpNot:
			regs[in.Dst] = ^regs[in.A]
		case ir.OpSetZ:
			if regs[in.A] == 0 {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case ir.OpEq:
			regs[in.Dst] = b2i(regs[in.A] == regs[in.B])
		case ir.OpNe:
			regs[in.Dst] = b2i(regs[in.A] != regs[in.B])
		case ir.OpLt:
			regs[in.Dst] = b2i(regs[in.A] < regs[in.B])
		case ir.OpLe:
			regs[in.Dst] = b2i(regs[in.A] <= regs[in.B])
		case ir.OpGt:
			regs[in.Dst] = b2i(regs[in.A] > regs[in.B])
		case ir.OpGe:
			regs[in.Dst] = b2i(regs[in.A] >= regs[in.B])
		case ir.OpLoad:
			v, ok := mm.ReadUFast(uint64(regs[in.A]), int(in.Width))
			if !ok {
				var err error
				v, err = mm.ReadU(uint64(regs[in.A]), int(in.Width))
				if err != nil {
					// Count-only (see OpDiv): the faulted access charged no
					// cycles but its step was consumed.
					if pnn != nil {
						pnn[op]++
					}
					return 0, &MemFault{Func: fn.Name, PC: pc, Err: err}
				}
			}
			regs[in.Dst] = extend(v, in.Width, in.Unsigned)
		case ir.OpStore:
			if !mm.WriteUFast(uint64(regs[in.A]), int(in.Width), uint64(regs[in.B])) {
				if err := mm.WriteU(uint64(regs[in.A]), int(in.Width), uint64(regs[in.B])); err != nil {
					if pnn != nil {
						pnn[op]++
					}
					return 0, &MemFault{Func: fn.Name, PC: pc, Err: err}
				}
			}
		case ir.OpAddrLocal:
			regs[in.Dst] = int64(base + uint64(offsets[in.Sym]))
		case ir.OpAddrGlobal:
			regs[in.Dst] = int64(m.globalAddr[in.Sym])
		case ir.OpAddrData:
			regs[in.Dst] = int64(m.dataAddr[in.Sym])
		case ir.OpJmp:
			pc = int(in.Target0)
			cycles += ct[ir.OpJmp]
			if pw != nil {
				pw[ir.OpJmp] += costMul
				pnn[ir.OpJmp]++
			}
			continue
		case ir.OpBr:
			if regs[in.A] != 0 {
				pc = int(in.Target0)
			} else {
				pc = int(in.Target1)
			}
			cycles += ct[ir.OpBr]
			if pw != nil {
				pw[ir.OpBr] += costMul
				pnn[ir.OpBr]++
			}
			continue
		case ir.OpCall:
			args := m.argSlab(len(m.frames), len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			// Attribute the call dispatch BEFORE descending (the compiled
			// driver does the same at evCall): its step was consumed at the
			// loop head, and an erroring callee — fault, step limit,
			// cancellation — unwinds past the shared tail, which would leak
			// one counted-but-unattributed instruction per live call frame.
			if pw != nil {
				pw[op] += costMul
				pnn[op]++
			}
			// Flush this frame's cycles and step count before descending so
			// recursive accounting stays ordered.
			m.stats.Cycles += cycles * costMul
			cycles = 0
			m.steps = steps
			v, err := m.call(m.Prog.Funcs[in.Sym], args)
			steps = m.steps
			if err != nil {
				return 0, err
			}
			if in.Dst != ir.NoReg {
				regs[in.Dst] = v
			}
			cycles += ct[op]
			pc++
			continue
		case ir.OpCallHost:
			args := m.argSlab(len(m.frames), len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			// Same pre-attribution as OpCall: a faulting host call must not
			// lose its already-stepped dispatch from the profile.
			if pw != nil {
				pw[op] += costMul
				pnn[op]++
			}
			m.steps = steps
			v, err := m.hostCall(fn, pc, int(in.Sym), args)
			if err != nil {
				return 0, err
			}
			if in.Dst != ir.NoReg {
				regs[in.Dst] = v
			}
			cycles += ct[op]
			pc++
			continue
		case ir.OpRet:
			cycles += ct[ir.OpRet]
			if pw != nil {
				pw[ir.OpRet] += costMul
				pnn[ir.OpRet]++
			}
			if in.A == ir.NoReg {
				return 0, nil
			}
			return regs[in.A], nil
		default:
			return 0, fmt.Errorf("vm: unknown opcode %v in %s at pc=%d", op, fn.Name, pc)
		}
		cycles += ct[op]
		if pw != nil {
			pw[op] += costMul
			pnn[op]++
		}
		pc++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// extend sign- or zero-extends a loaded value.
func extend(v uint64, width uint8, unsigned bool) int64 {
	switch width {
	case 1:
		if unsigned {
			return int64(uint8(v))
		}
		return int64(int8(v))
	case 4:
		if unsigned {
			return int64(uint32(v))
		}
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// hostIndex resolves builtin names once.
var hostNames = func() []string {
	names := make([]string, len(sema.Builtins))
	for i, b := range sema.Builtins {
		names[i] = b.Name
	}
	return names
}()
