// Threaded-code tier, execute half: the dispatch loop over pre-decoded
// cinstr streams. Structurally this mirrors Machine.exec — same pooled
// register slabs, same hoisted step/cycle locals, same flush points around
// calls — because the modeled-cycle accounting must be bit-identical
// between the tiers (see compile.go on cost ordering). What changes is the
// per-step work:
//
//   - no operand re-decoding and no width/signedness switches on loads and
//     stores (the compiler specialized them);
//   - costs read off the instruction instead of a table;
//   - fused superinstructions executing two or three IR ops per dispatch,
//     each its own case arm so a fused group costs exactly one dispatch
//     (grouped arms with an inner switch would re-dispatch and forfeit the
//     win);
//   - memory through inlined segment views instead of out-of-line accessor
//     calls: fused frame-offset loads/stores go straight at the stack
//     segment (a frame address is always in it), and computed-address ops
//     try two rotating hot-segment views plus the stack view, so streams
//     that alternate between two data segments stay in-core.
//
// The loop is split into a CALL-FREE core (runCore) and a driver
// (execCompiled). The core contains no function calls at all — no calls
// into Memory, no error allocation, no sub-VM calls — only inlinable
// segment-view accessors and arithmetic. That matters more than it looks:
// Go's register allocator gives any value that is live across a call a
// stack slot, and with calls in the loop the cycle accumulator degraded to
// a load-add-store chain through memory on every step (store-forwarding
// latency ~3x the FP add alone, and the accumulator chain is the loop's
// critical path). With a pure core, cycles/steps/pc live in registers and
// the serial float chain runs at ADDSD latency. Anything that needs a real
// call — CALL/host dispatch, slow-path memory, faults, returns — exits the
// core with an event code; the driver handles it with full state in hand
// and re-enters.
//
// Step-limit semantics inside a fused group replicate the switch
// interpreter exactly: the budget is re-checked before every constituent,
// so a limit that lands mid-group stops after the same instruction, with
// the same partial cycle total, as the unfused stream would. Likewise a
// fused divide still checks its divisor only after the constant
// constituent ran, and faults attribute to the constituent's original IR
// pc (c.pc + k for constituent k).

package vm

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mem"
)

// coreEvent is why runCore handed control back to the driver.
type coreEvent int32

const (
	evLimit    coreEvent = iota // step budget exhausted (before code[pc] ran)
	evRet                       // cRet at pc; result is regs[code[pc].a]
	evRetVoid                   // cRetVoid at pc
	evCall                      // cCall at pc; driver performs the sub-call
	evCallHost                  // cCallHost at pc
	evMemSlow                   // memory constituent at pc missed the fast views
	evDivZero                   // divide/modulo by zero at pc
	evBad                       // unknown opcode at pc
)

// execCompiled interprets fn's compiled stream. It is the compiled tier's
// counterpart of exec and must preserve its observable behaviour (results,
// faults, Stats) bit for bit; TestCycleInvariance and the tier
// differential test enforce that.
func (m *Machine) execCompiled(fn *ir.Function, cf *compiledFunc, base uint64, offsets []int64) (int64, error) {
	regs := m.regSlab(len(m.frames)-1, fn.NumRegs)
	code := cf.code
	// Block tier: blocks holds the mined superinstruction descriptors and
	// entry points at the function's first dispatch (a cBlock when the
	// entry run is hot). Threaded streams have nil blocks and entry 0, and
	// the cores never touch either.
	blocks := cf.blocks
	costMul := 1.0
	if m.jitter != nil {
		costMul = m.jitter[fn.ID]
	}
	mm := m.Mem
	stk := m.stack
	// Two rotating segment views for computed addresses. Workloads (and
	// especially DOP attack scenarios) alternate between two non-stack
	// segments — heap and globals — and a single view would double-miss on
	// every other access, paying the full event round-trip each time. With
	// two views the driver rotates hot→hot2 on each slow-path re-aim, so
	// steady alternation settles in-core after two events.
	hot, hot2 := stk, stk
	// pn is the per-cop dispatch-count slab for the counting core twin:
	// nil when no profile is attached, and the dormant runCore (which
	// never sees pn at all) runs instead — see runCoreProf. The core
	// records raw counts only; the driver folds them with this
	// invocation's cost multiplier at call boundaries (flushPending), so
	// nested invocations with different jitter factors never mix.
	pn := m.profPN
	cycles := 0.0
	steps, limit := m.steps, m.stepLimit
	// next is the supervised chunk boundary (see exec): equal to limit with
	// the watchdog dormant — bit-identical behaviour — and every
	// supervisionInterval steps when armed. Only the core's loop-head check
	// compares against next; mid-group re-checks keep the real limit, so a
	// loop-head evLimit with steps < limit is always a clean, resumable
	// group boundary (no partial constituent effects).
	next := limit
	if m.watchdog {
		next = supNext(steps, limit)
	}
	pc := int(cf.entry)
	for {
		var ev coreEvent
		if pn == nil {
			pc, cycles, steps, ev = runCore(code, blocks, regs, base, offsets, stk, hot, hot2, pc, cycles, steps, next, limit)
		} else {
			pc, cycles, steps, ev = runCoreProf(code, blocks, regs, base, offsets, stk, hot, hot2, pc, cycles, steps, next, limit, pn)
		}
		c := &code[pc]
		switch ev {
		case evLimit:
			if steps >= limit {
				m.steps = steps
				m.stats.Cycles += cycles * costMul
				return 0, &StepLimit{Limit: limit}
			}
			// Supervised chunk boundary: poll the watchdog, then resume at
			// the same pc (the instruction there has not run).
			if m.interrupted.Load() {
				m.steps = steps
				m.stats.Cycles += cycles * costMul
				return 0, &Canceled{}
			}
			next = supNext(steps, limit)
		case evRet:
			m.steps = steps
			m.stats.Cycles += cycles * costMul
			return regs[c.a], nil
		case evRetVoid:
			m.steps = steps
			m.stats.Cycles += cycles * costMul
			return 0, nil
		case evCall:
			list := cf.argLists[c.a]
			args := m.argSlab(len(m.frames), len(list))
			for i, r := range list {
				args[i] = regs[r]
			}
			// Flush this frame's cycles and step count before descending so
			// recursive accounting stays ordered (same flush point as exec).
			// Pending dispatch counts flush too: the callee runs with its
			// own jitter multiplier.
			if pn != nil {
				pn[cCall]++
				m.flushPending(fn)
			}
			m.stats.Cycles += cycles * costMul
			cycles = 0
			m.steps = steps
			v, err := m.call(m.Prog.Funcs[c.sym], args)
			steps = m.steps
			if err != nil {
				m.steps = steps
				return 0, err
			}
			if c.dst != int32(ir.NoReg) {
				regs[c.dst] = v
			}
			cycles += c.cost // OpCall carries zero cost; kept for tail parity
			pc++
		case evCallHost:
			list := cf.argLists[c.a]
			args := m.argSlab(len(m.frames), len(list))
			for i, r := range list {
				args[i] = regs[r]
			}
			// Count the dispatch BEFORE the host call (mirrors evCall): a
			// faulting host function unwinds without reaching this case's
			// tail, and its step was already consumed by the core.
			if pn != nil {
				pn[cCallHost]++
			}
			m.steps = steps
			v, err := m.hostCall(fn, int(c.pc), int(c.sym), args)
			if err != nil {
				m.stats.Cycles += cycles * costMul
				return 0, err
			}
			if c.dst != int32(ir.NoReg) {
				regs[c.dst] = v
			}
			cycles += c.cost
			pc++
		case evMemSlow:
			costAdd, err := m.slowMem(fn, c, regs, base, offsets)
			if err != nil {
				// Count-only attribution of the faulting dispatch (bypassing
				// the weighted flushPending path): the group's consumed
				// constituents equal its full expansion here — the memory
				// access is always the last constituent — so one raw count
				// keeps op rows summing to Stats.Instructions without
				// attributing cycles the fault never charged.
				if pn != nil {
					m.profCN[c.op]++
				}
				m.steps = steps
				m.stats.Cycles += cycles * costMul
				return 0, err
			}
			// The memory access is the LAST constituent of every group that
			// can raise evMemSlow, so a successful slow path completes the
			// whole dispatch: count it (the core's tail was bypassed).
			if pn != nil {
				pn[c.op]++
				m.profMemSlow++
			}
			cycles += costAdd
			pc++
			if h := mm.HotSegment(); h != nil && h != hot {
				hot2, hot = hot, h
			}
		case evDivZero:
			// Count-only attribution (see evMemSlow): the divide is the last
			// consumed constituent of cDiv/cMod/cConstDiv/cConstMod, so the
			// group's expansion matches its consumed steps exactly.
			if pn != nil {
				m.profCN[c.op]++
			}
			m.steps = steps
			m.stats.Cycles += cycles * costMul
			at := int(c.pc)
			if c.op == cConstDiv || c.op == cConstMod {
				at++ // the divide is the second constituent of the fused pair
			}
			return 0, &DivideByZero{Func: fn.Name, PC: at}
		default: // evBad
			m.steps = steps
			m.stats.Cycles += cycles * costMul
			if c.op == cBad {
				return 0, fmt.Errorf("vm: unknown opcode %v in %s at pc=%d", ir.Op(c.sym), fn.Name, c.pc)
			}
			return 0, fmt.Errorf("vm: unknown compiled opcode %d in %s at pc=%d", c.op, fn.Name, c.pc)
		}
	}
}

// slowRead reads n bytes through Memory.FindSegment rather than the plain
// fast-path accessors: FindSegment promotes the serving segment to
// HotSegment even when the cache's prev slot holds it, and the driver
// re-aims the core's inline views from HotSegment after every slow-path
// event. Without the promotion an alternating two-segment stream would
// leave the views stuck and take this round-trip on every other access.
func slowRead(mm *mem.Memory, addr uint64, n int) (uint64, bool) {
	s := mm.FindSegment(addr, n)
	if s == nil {
		return 0, false
	}
	switch n {
	case 8:
		return s.ReadU64At(addr)
	case 4:
		v, ok := s.ReadU32At(addr)
		return uint64(v), ok
	case 1:
		v, ok := s.ReadU8At(addr)
		return uint64(v), ok
	}
	return 0, false
}

// slowWrite is slowRead's store counterpart; false sends the caller to
// WriteU for the authoritative error.
func slowWrite(mm *mem.Memory, addr uint64, n int, val uint64) bool {
	s := mm.FindSegment(addr, n)
	if s == nil {
		return false
	}
	return s.WriteUAt(addr, n, val)
}

// slowMem performs the memory constituent of code[pc] through the general
// (fault-producing) Memory path after the core's fast segment views missed.
// The core has already run every earlier constituent of a fused group —
// in particular the effective address is always in regs[c.dst] for fused
// forms — so only the access itself and its cost remain. Returns the cost
// the driver must still accumulate for the constituent.
func (m *Machine) slowMem(fn *ir.Function, c *cinstr, regs []int64, base uint64, offsets []int64) (float64, error) {
	mm := m.Mem
	switch c.op {
	case cLoad8, cLoad4s, cLoad4u, cLoad1s, cLoad1u:
		addr := uint64(regs[c.a])
		n := int(c.width)
		v, ok := slowRead(mm, addr, n)
		if !ok {
			var err error
			if v, err = mm.ReadU(addr, n); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc), Err: err}
			}
		}
		regs[c.dst] = extend(v, c.width, c.unsigned)
		return c.cost, nil
	case cStore8, cStore4, cStore1:
		addr := uint64(regs[c.a])
		n := int(c.width)
		if !slowWrite(mm, addr, n, uint64(regs[c.b])) {
			if err := mm.WriteU(addr, n, uint64(regs[c.b])); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc), Err: err}
			}
		}
		return c.cost, nil
	case cAddrLoad8, cAddrLoad4s, cAddrLoad4u, cAddrLoad1s, cAddrLoad1u,
		cAddLoad8, cAddLoad4s, cAddLoad4u, cAddLoad1s, cAddLoad1u:
		addr := uint64(regs[c.dst])
		n := int(c.width)
		v, ok := slowRead(mm, addr, n)
		if !ok {
			var err error
			if v, err = mm.ReadU(addr, n); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 1, Err: err}
			}
		}
		regs[c.dst2] = extend(v, c.width, c.unsigned)
		return c.cost2, nil
	case cAddrStore8, cAddrStore4, cAddrStore1:
		addr := uint64(regs[c.dst])
		n := int(c.width)
		if !slowWrite(mm, addr, n, uint64(regs[c.b])) {
			if err := mm.WriteU(addr, n, uint64(regs[c.b])); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 1, Err: err}
			}
		}
		return c.cost2, nil
	case cAddStore8, cAddStore4, cAddStore1:
		addr := uint64(regs[c.dst])
		n := int(c.width)
		if !slowWrite(mm, addr, n, uint64(regs[c.dst2])) {
			if err := mm.WriteU(addr, n, uint64(regs[c.dst2])); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 1, Err: err}
			}
		}
		return c.cost2, nil
	case cAddrAddrLoad8:
		addr := uint64(regs[c.a])
		v, ok := slowRead(mm, addr, 8)
		if !ok {
			var err error
			if v, err = mm.ReadU(addr, 8); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 2, Err: err}
			}
		}
		regs[c.dst2] = int64(v)
		return c.cost2, nil
	case cMulLoad8:
		addr := uint64(regs[c.t1])
		v, ok := slowRead(mm, addr, 8)
		if !ok {
			var err error
			if v, err = mm.ReadU(addr, 8); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 3, Err: err}
			}
		}
		regs[c.sym] = int64(v)
		return c.cost3, nil
	case cMulStore8:
		addr := uint64(regs[c.t1])
		if !slowWrite(mm, addr, 8, uint64(regs[c.sym])) {
			if err := mm.WriteU(addr, 8, uint64(regs[c.sym])); err != nil {
				return 0, &MemFault{Func: fn.Name, PC: int(c.pc) + 3, Err: err}
			}
		}
		return c.cost3, nil
	}
	return 0, fmt.Errorf("vm: slowMem on non-memory opcode %d in %s at pc=%d", c.op, fn.Name, c.pc)
}

// runCore executes compiled instructions until something needs a real
// function call, then reports (pc, cycles, steps, event) for the driver.
// It must stay free of function calls (only inlinable accessors) so the
// accumulators registerize; do not add error construction, Memory methods,
// or anything else that compiles to CALL here.
//
// next is the driver's supervised chunk boundary (next <= limit; equal when
// no watchdog is armed), checked only here at the loop head where no
// partial group effects exist. The mid-group re-checks below compare the
// real limit, so an evLimit with steps < limit can only come from the loop
// head and is always safe to resume.
func runCore(code []cinstr, blocks []blockDesc, regs []int64, base uint64, offsets []int64, stk, hot, hot2 *mem.Segment, pc int, cycles float64, steps, next, limit uint64) (int, float64, uint64, coreEvent) {
	for {
		if steps >= next {
			return pc, cycles, steps, evLimit
		}
		steps++
		c := &code[pc]
		switch c.op {
		case cNop:
		case cConst:
			regs[c.dst] = c.imm
		case cMov:
			regs[c.dst] = regs[c.a]
		case cAdd:
			regs[c.dst] = regs[c.a] + regs[c.b]
		case cSub:
			regs[c.dst] = regs[c.a] - regs[c.b]
		case cMul:
			regs[c.dst] = regs[c.a] * regs[c.b]
		case cDiv:
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst] = regs[c.a] / regs[c.b]
		case cMod:
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst] = regs[c.a] % regs[c.b]
		case cAnd:
			regs[c.dst] = regs[c.a] & regs[c.b]
		case cOr:
			regs[c.dst] = regs[c.a] | regs[c.b]
		case cXor:
			regs[c.dst] = regs[c.a] ^ regs[c.b]
		case cShl:
			regs[c.dst] = regs[c.a] << (uint64(regs[c.b]) & 63)
		case cShr:
			regs[c.dst] = regs[c.a] >> (uint64(regs[c.b]) & 63)
		case cNeg:
			regs[c.dst] = -regs[c.a]
		case cNot:
			regs[c.dst] = ^regs[c.a]
		case cSetZ:
			if regs[c.a] == 0 {
				regs[c.dst] = 1
			} else {
				regs[c.dst] = 0
			}
		case cEq:
			regs[c.dst] = b2i(regs[c.a] == regs[c.b])
		case cNe:
			regs[c.dst] = b2i(regs[c.a] != regs[c.b])
		case cLt:
			regs[c.dst] = b2i(regs[c.a] < regs[c.b])
		case cLe:
			regs[c.dst] = b2i(regs[c.a] <= regs[c.b])
		case cGt:
			regs[c.dst] = b2i(regs[c.a] > regs[c.b])
		case cGe:
			regs[c.dst] = b2i(regs[c.a] >= regs[c.b])

		case cLoad8:
			addr := uint64(regs[c.a])
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)
		case cLoad4s:
			addr := uint64(regs[c.a])
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(int32(v))
		case cLoad4u:
			addr := uint64(regs[c.a])
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)
		case cLoad1s:
			addr := uint64(regs[c.a])
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(int8(v))
		case cLoad1u:
			addr := uint64(regs[c.a])
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)

		case cStore8:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, uint64(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, uint64(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, uint64(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
		case cStore4:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
				put4(hd, hb, addr, uint32(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
				put4(d2, b2, addr, uint32(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
		case cStore1:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
				put1(hd, hb, addr, byte(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
				put1(d2, b2, addr, byte(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}

		case cAddrLocal:
			regs[c.dst] = int64(base + uint64(offsets[c.sym]))
		case cAddrConst:
			regs[c.dst] = c.imm
		case cJmp:
			pc = int(c.t0)
			cycles += c.cost
			continue
		case cBr:
			if regs[c.a] != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost
			continue
		case cCall:
			return pc, cycles, steps, evCall
		case cCallHost:
			return pc, cycles, steps, evCallHost
		case cRet:
			cycles += c.cost
			return pc, cycles, steps, evRet
		case cRetVoid:
			cycles += c.cost
			return pc, cycles, steps, evRetVoid

		case cEqBr:
			v := b2i(regs[c.a] == regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue
		case cNeBr:
			v := b2i(regs[c.a] != regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue
		case cLtBr:
			v := b2i(regs[c.a] < regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue
		case cLeBr:
			v := b2i(regs[c.a] <= regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue
		case cGtBr:
			v := b2i(regs[c.a] > regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue
		case cGeBr:
			v := b2i(regs[c.a] >= regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			continue

		case cConstAdd:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] + regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstSub:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] - regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstMul:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstDiv:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst2] = regs[c.a] / regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstMod:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst2] = regs[c.a] % regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstAnd:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] & regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstOr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] | regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstXor:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] ^ regs[c.b]
			cycles += c.cost2
			pc++
			continue
		case cConstShl:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] << (uint64(regs[c.b]) & 63)
			cycles += c.cost2
			pc++
			continue
		case cConstShr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] >> (uint64(regs[c.b]) & 63)
			cycles += c.cost2
			pc++
			continue

		case cConstEqBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] == regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue
		case cConstNeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] != regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue
		case cConstLtBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] < regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue
		case cConstLeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] <= regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue
		case cConstGtBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] > regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue
		case cConstGeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] >= regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			continue

		// Fused frame-offset loads/stores: the address is base+offset,
		// which is always inside the stack segment, so the stack view is
		// the effectively-always path.
		case cAddrLoad8:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has8(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get8(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue
		case cAddrLoad4s:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has4(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get4(sd, sb, addr)
			regs[c.dst2] = int64(int32(v))
			cycles += c.cost2
			pc++
			continue
		case cAddrLoad4u:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has4(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get4(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue
		case cAddrLoad1s:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has1(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get1(sd, sb, addr)
			regs[c.dst2] = int64(int8(v))
			cycles += c.cost2
			pc++
			continue
		case cAddrLoad1u:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has1(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get1(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue

		case cAddrStore8:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, uint64(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue
		case cAddrStore4:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue
		case cAddrStore1:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue

		// Fused computed-address (array element) loads/stores: the add's
		// sum is the effective address, through the hot then stack views.
		case cAddLoad8:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue
		case cAddLoad4s:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(int32(v))
			cycles += c.cost2
			pc++
			continue
		case cAddLoad4u:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue
		case cAddLoad1s:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(int8(v))
			cycles += c.cost2
			pc++
			continue
		case cAddLoad1u:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue

		case cAddStore8:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, val)
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, val)
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, val)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue
		case cAddStore4:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
				put4(hd, hb, addr, uint32(val))
			} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(val))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
				put4(d2, b2, addr, uint32(val))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue
		case cAddStore1:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
				put1(hd, hb, addr, byte(val))
			} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(val))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
				put1(d2, b2, addr, byte(val))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pc++
			continue

		case cAddrAddrLoad8:
			regs[c.dst] = int64(base + uint64(offsets[c.sym]))
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := base + uint64(offsets[c.t0])
			regs[c.a] = int64(addr)
			cycles += c.cost // second AddrLocal, same table entry
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has8(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get8(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pc++
			continue

		case cMulLoad8:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sum := regs[c.t0] + regs[c.dst2]
			regs[c.t1] = sum
			cycles += c.cost // the Add shares the const's ALU cost (compile-time guarded)
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.sym] = int64(v)
			cycles += c.cost3
			pc++
			continue
		case cMulStore8:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sum := regs[c.t0] + regs[c.dst2]
			regs[c.t1] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.sym])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, val)
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, val)
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, val)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost3
			pc++
			continue

		case cBlock:
			// Block superinstruction (blocktier.go): the whole mined
			// straight-line run executes with ONE pre-summed cost add and
			// the step budget amortized into this dispatch's loop-head
			// check. The bail below guarantees the budget cannot land
			// inside the block (entry steps + d.steps <= limit); when it
			// could, the plain copies at d.start replay the run with full
			// per-constituent fidelity instead (steps-- undoes this loop
			// head's increment; the plain leader re-increments). Mid-block
			// events that don't depend on the budget — slow-path memory,
			// divide-by-zero — exit with exact partial sums (prefix/psteps)
			// at the PLAIN index of the faulting uop, so the driver's
			// handlers, fault attribution and pc+1 resume work unchanged
			// and execution rejoins the accelerated stream at the next
			// redirected branch.
			d := &blocks[c.a]
			if d.steps > limit-steps+1 {
				steps--
				pc = int(d.start)
				continue
			}
			uops := d.uops
			npc := int(c.t0)
			for j := 0; j < len(uops); j++ {
				u := &uops[j]
				switch u.op {
				case cNop:
				case cConst:
					regs[u.dst] = u.imm
				case cMov:
					regs[u.dst] = regs[u.a]
				case cAdd:
					regs[u.dst] = regs[u.a] + regs[u.b]
				case cSub:
					regs[u.dst] = regs[u.a] - regs[u.b]
				case cMul:
					regs[u.dst] = regs[u.a] * regs[u.b]
				case cDiv:
					if regs[u.b] == 0 {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst] = regs[u.a] / regs[u.b]
				case cMod:
					if regs[u.b] == 0 {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst] = regs[u.a] % regs[u.b]
				case cAnd:
					regs[u.dst] = regs[u.a] & regs[u.b]
				case cOr:
					regs[u.dst] = regs[u.a] | regs[u.b]
				case cXor:
					regs[u.dst] = regs[u.a] ^ regs[u.b]
				case cShl:
					regs[u.dst] = regs[u.a] << (uint64(regs[u.b]) & 63)
				case cShr:
					regs[u.dst] = regs[u.a] >> (uint64(regs[u.b]) & 63)
				case cNeg:
					regs[u.dst] = -regs[u.a]
				case cNot:
					regs[u.dst] = ^regs[u.a]
				case cSetZ:
					if regs[u.a] == 0 {
						regs[u.dst] = 1
					} else {
						regs[u.dst] = 0
					}
				case cEq:
					regs[u.dst] = b2i(regs[u.a] == regs[u.b])
				case cNe:
					regs[u.dst] = b2i(regs[u.a] != regs[u.b])
				case cLt:
					regs[u.dst] = b2i(regs[u.a] < regs[u.b])
				case cLe:
					regs[u.dst] = b2i(regs[u.a] <= regs[u.b])
				case cGt:
					regs[u.dst] = b2i(regs[u.a] > regs[u.b])
				case cGe:
					regs[u.dst] = b2i(regs[u.a] >= regs[u.b])

				case cLoad8:
					addr := uint64(regs[u.a])
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)
				case cLoad4s:
					addr := uint64(regs[u.a])
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(int32(v))
				case cLoad4u:
					addr := uint64(regs[u.a])
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)
				case cLoad1s:
					addr := uint64(regs[u.a])
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(int8(v))
				case cLoad1u:
					addr := uint64(regs[u.a])
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)

				case cStore8:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, uint64(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, uint64(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, uint64(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cStore4:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
						put4(hd, hb, addr, uint32(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
						put4(d2, b2, addr, uint32(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cStore1:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
						put1(hd, hb, addr, byte(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
						put1(d2, b2, addr, byte(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddrLocal:
					regs[u.dst] = int64(base + uint64(offsets[u.sym]))
				case cAddrConst:
					regs[u.dst] = u.imm

				case cConstAdd:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] + regs[u.b]
				case cConstSub:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] - regs[u.b]
				case cConstMul:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
				case cConstDiv:
					regs[u.dst] = u.imm
					if regs[u.b] == 0 {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst2] = regs[u.a] / regs[u.b]
				case cConstMod:
					regs[u.dst] = u.imm
					if regs[u.b] == 0 {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst2] = regs[u.a] % regs[u.b]
				case cConstAnd:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] & regs[u.b]
				case cConstOr:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] | regs[u.b]
				case cConstXor:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] ^ regs[u.b]
				case cConstShl:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] << (uint64(regs[u.b]) & 63)
				case cConstShr:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] >> (uint64(regs[u.b]) & 63)

				case cAddrLoad8:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has8(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get8(sd, sb, addr)
					regs[u.dst2] = int64(v)
				case cAddrLoad4s:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has4(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get4(sd, sb, addr)
					regs[u.dst2] = int64(int32(v))
				case cAddrLoad4u:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has4(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get4(sd, sb, addr)
					regs[u.dst2] = int64(v)
				case cAddrLoad1s:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has1(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get1(sd, sb, addr)
					regs[u.dst2] = int64(int8(v))
				case cAddrLoad1u:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has1(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get1(sd, sb, addr)
					regs[u.dst2] = int64(v)

				case cAddrStore8:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, uint64(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddrStore4:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddrStore1:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddLoad8:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)
				case cAddLoad4s:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(int32(v))
				case cAddLoad4u:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)
				case cAddLoad1s:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(int8(v))
				case cAddLoad1u:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)

				case cAddStore8:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, val)
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, val)
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, val)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddStore4:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
						put4(hd, hb, addr, uint32(val))
					} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(val))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
						put4(d2, b2, addr, uint32(val))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddStore1:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
						put1(hd, hb, addr, byte(val))
					} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(val))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
						put1(d2, b2, addr, byte(val))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddrAddrLoad8:
					regs[u.dst] = int64(base + uint64(offsets[u.sym]))
					addr := base + uint64(offsets[u.t0])
					regs[u.a] = int64(addr)
					sd, sb, se := stk.View()
					if !has8(sb, se, addr) {
						cycles += d.prefix[j] + u.cost + u.cost
						steps += uint64(d.psteps[j]) + 2
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get8(sd, sb, addr)
					regs[u.dst2] = int64(v)

				case cMulLoad8:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
					sum := regs[u.t0] + regs[u.dst2]
					regs[u.t1] = sum
					addr := uint64(sum)
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost + u.cost2 + u.cost
						steps += uint64(d.psteps[j]) + 3
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.sym] = int64(v)
				case cMulStore8:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
					sum := regs[u.t0] + regs[u.dst2]
					regs[u.t1] = sum
					addr := uint64(sum)
					val := uint64(regs[u.sym])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, val)
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, val)
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, val)
					} else {
						cycles += d.prefix[j] + u.cost + u.cost2 + u.cost
						steps += uint64(d.psteps[j]) + 3
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cJmp:
					npc = int(u.t0)
				case cBr:
					if regs[u.a] != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cEqBr:
					v := b2i(regs[u.a] == regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cNeBr:
					v := b2i(regs[u.a] != regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cLtBr:
					v := b2i(regs[u.a] < regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cLeBr:
					v := b2i(regs[u.a] <= regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cGtBr:
					v := b2i(regs[u.a] > regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cGeBr:
					v := b2i(regs[u.a] >= regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstEqBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] == regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstNeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] != regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstLtBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] < regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstLeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] <= regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstGtBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] > regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstGeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] >= regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}

				default:
					// Unreachable: the miner only admits uops with a case
					// above. Surface as evBad at the plain index.
					cycles += d.prefix[j]
					steps += uint64(d.psteps[j])
					return int(d.start) + j, cycles, steps, evBad
				}
			}
			cycles += d.cost
			steps += d.steps - 1
			pc = npc
			continue

		default: // cBad and anything unrecognized
			return pc, cycles, steps, evBad
		}
		cycles += c.cost
		pc++
	}
}

// runCoreProf is runCore with per-cop dispatch counting: each completed
// dispatch (all constituents of a fused group ran) increments pn[c.op]
// with a plain array add — no calls, so the core stays registerized. A
// dispatch that exits early (event, fault, mid-group limit) is NOT
// counted; the driver supplies the correction where the dispatch still
// completes off-core (evMemSlow, evCall, evCallHost).
//
// It exists as a twin so the dormant core carries no trace of profiling
// (not even a never-taken branch or the extra live slice): threading pn
// through runCore's register-allocated loop measurably slows dormant
// runs. The two bodies must stay in step; TestProfileReconciliation and
// the tier-differential suite pin them to identical semantics
// (bit-equal results, Stats, and faults, profiled vs dormant).
func runCoreProf(code []cinstr, blocks []blockDesc, regs []int64, base uint64, offsets []int64, stk, hot, hot2 *mem.Segment, pc int, cycles float64, steps, next, limit uint64, pn []uint64) (int, float64, uint64, coreEvent) {
	for {
		if steps >= next {
			return pc, cycles, steps, evLimit
		}
		steps++
		c := &code[pc]
		switch c.op {
		case cNop:
		case cConst:
			regs[c.dst] = c.imm
		case cMov:
			regs[c.dst] = regs[c.a]
		case cAdd:
			regs[c.dst] = regs[c.a] + regs[c.b]
		case cSub:
			regs[c.dst] = regs[c.a] - regs[c.b]
		case cMul:
			regs[c.dst] = regs[c.a] * regs[c.b]
		case cDiv:
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst] = regs[c.a] / regs[c.b]
		case cMod:
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst] = regs[c.a] % regs[c.b]
		case cAnd:
			regs[c.dst] = regs[c.a] & regs[c.b]
		case cOr:
			regs[c.dst] = regs[c.a] | regs[c.b]
		case cXor:
			regs[c.dst] = regs[c.a] ^ regs[c.b]
		case cShl:
			regs[c.dst] = regs[c.a] << (uint64(regs[c.b]) & 63)
		case cShr:
			regs[c.dst] = regs[c.a] >> (uint64(regs[c.b]) & 63)
		case cNeg:
			regs[c.dst] = -regs[c.a]
		case cNot:
			regs[c.dst] = ^regs[c.a]
		case cSetZ:
			if regs[c.a] == 0 {
				regs[c.dst] = 1
			} else {
				regs[c.dst] = 0
			}
		case cEq:
			regs[c.dst] = b2i(regs[c.a] == regs[c.b])
		case cNe:
			regs[c.dst] = b2i(regs[c.a] != regs[c.b])
		case cLt:
			regs[c.dst] = b2i(regs[c.a] < regs[c.b])
		case cLe:
			regs[c.dst] = b2i(regs[c.a] <= regs[c.b])
		case cGt:
			regs[c.dst] = b2i(regs[c.a] > regs[c.b])
		case cGe:
			regs[c.dst] = b2i(regs[c.a] >= regs[c.b])

		case cLoad8:
			addr := uint64(regs[c.a])
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)
		case cLoad4s:
			addr := uint64(regs[c.a])
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(int32(v))
		case cLoad4u:
			addr := uint64(regs[c.a])
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)
		case cLoad1s:
			addr := uint64(regs[c.a])
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(int8(v))
		case cLoad1u:
			addr := uint64(regs[c.a])
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst] = int64(v)

		case cStore8:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, uint64(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, uint64(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, uint64(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
		case cStore4:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
				put4(hd, hb, addr, uint32(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
				put4(d2, b2, addr, uint32(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
		case cStore1:
			addr := uint64(regs[c.a])
			if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
				put1(hd, hb, addr, byte(regs[c.b]))
			} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(regs[c.b]))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
				put1(d2, b2, addr, byte(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}

		case cAddrLocal:
			regs[c.dst] = int64(base + uint64(offsets[c.sym]))
		case cAddrConst:
			regs[c.dst] = c.imm
		case cJmp:
			pc = int(c.t0)
			cycles += c.cost
			pn[cJmp]++
			continue
		case cBr:
			if regs[c.a] != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost
			pn[cBr]++
			continue
		case cCall:
			return pc, cycles, steps, evCall
		case cCallHost:
			return pc, cycles, steps, evCallHost
		case cRet:
			cycles += c.cost
			pn[cRet]++
			return pc, cycles, steps, evRet
		case cRetVoid:
			cycles += c.cost
			pn[cRetVoid]++
			return pc, cycles, steps, evRetVoid

		case cEqBr:
			v := b2i(regs[c.a] == regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue
		case cNeBr:
			v := b2i(regs[c.a] != regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue
		case cLtBr:
			v := b2i(regs[c.a] < regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue
		case cLeBr:
			v := b2i(regs[c.a] <= regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue
		case cGtBr:
			v := b2i(regs[c.a] > regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue
		case cGeBr:
			v := b2i(regs[c.a] >= regs[c.b])
			regs[c.dst] = v
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost2
			pn[c.op]++
			continue

		case cConstAdd:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] + regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstSub:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] - regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstMul:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstDiv:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst2] = regs[c.a] / regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstMod:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if regs[c.b] == 0 {
				return pc, cycles, steps, evDivZero
			}
			regs[c.dst2] = regs[c.a] % regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstAnd:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] & regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstOr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] | regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstXor:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] ^ regs[c.b]
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstShl:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] << (uint64(regs[c.b]) & 63)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cConstShr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] >> (uint64(regs[c.b]) & 63)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		case cConstEqBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] == regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue
		case cConstNeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] != regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue
		case cConstLtBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] < regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue
		case cConstLeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] <= regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue
		case cConstGtBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] > regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue
		case cConstGeBr:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			v := b2i(regs[c.a] >= regs[c.b])
			regs[c.dst2] = v
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if v != 0 {
				pc = int(c.t0)
			} else {
				pc = int(c.t1)
			}
			cycles += c.cost3
			pn[c.op]++
			continue

		// Fused frame-offset loads/stores: the address is base+offset,
		// which is always inside the stack segment, so the stack view is
		// the effectively-always path.
		case cAddrLoad8:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has8(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get8(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrLoad4s:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has4(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get4(sd, sb, addr)
			regs[c.dst2] = int64(int32(v))
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrLoad4u:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has4(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get4(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrLoad1s:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has1(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get1(sd, sb, addr)
			regs[c.dst2] = int64(int8(v))
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrLoad1u:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has1(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get1(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		case cAddrStore8:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, uint64(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrStore4:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddrStore1:
			addr := base + uint64(offsets[c.sym])
			regs[c.dst] = int64(addr)
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(regs[c.b]))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		// Fused computed-address (array element) loads/stores: the add's
		// sum is the effective address, through the hot then stack views.
		case cAddLoad8:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddLoad4s:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(int32(v))
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddLoad4u:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint32
			if hd, hb, he := hot.View(); has4(hb, he, addr) {
				v = get4(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
				v = get4(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
				v = get4(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddLoad1s:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(int8(v))
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddLoad1u:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v byte
			if hd, hb, he := hot.View(); has1(hb, he, addr) {
				v = get1(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
				v = get1(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
				v = get1(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		case cAddStore8:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, val)
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, val)
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, val)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddStore4:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
				put4(hd, hb, addr, uint32(val))
			} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
				put4(sd, sb, addr, uint32(val))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
				put4(d2, b2, addr, uint32(val))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue
		case cAddStore1:
			sum := regs[c.a] + regs[c.b]
			regs[c.dst] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.dst2])
			if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
				put1(hd, hb, addr, byte(val))
			} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
				put1(sd, sb, addr, byte(val))
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
				put1(d2, b2, addr, byte(val))
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		case cAddrAddrLoad8:
			regs[c.dst] = int64(base + uint64(offsets[c.sym]))
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := base + uint64(offsets[c.t0])
			regs[c.a] = int64(addr)
			cycles += c.cost // second AddrLocal, same table entry
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sd, sb, se := stk.View()
			if !has8(sb, se, addr) {
				return pc, cycles, steps, evMemSlow
			}
			v := get8(sd, sb, addr)
			regs[c.dst2] = int64(v)
			cycles += c.cost2
			pn[c.op]++
			pc++
			continue

		case cMulLoad8:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sum := regs[c.t0] + regs[c.dst2]
			regs[c.t1] = sum
			cycles += c.cost // the Add shares the const's ALU cost (compile-time guarded)
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			var v uint64
			if hd, hb, he := hot.View(); has8(hb, he, addr) {
				v = get8(hd, hb, addr)
			} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
				v = get8(sd, sb, addr)
			} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
				v = get8(d2, b2, addr)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			regs[c.sym] = int64(v)
			cycles += c.cost3
			pn[c.op]++
			pc++
			continue
		case cMulStore8:
			regs[c.dst] = c.imm
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			regs[c.dst2] = regs[c.a] * regs[c.b]
			cycles += c.cost2
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			sum := regs[c.t0] + regs[c.dst2]
			regs[c.t1] = sum
			cycles += c.cost
			if steps >= limit {
				return pc, cycles, steps, evLimit
			}
			steps++
			addr := uint64(sum)
			val := uint64(regs[c.sym])
			if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
				put8(hd, hb, addr, val)
			} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
				put8(sd, sb, addr, val)
			} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
				put8(d2, b2, addr, val)
			} else {
				return pc, cycles, steps, evMemSlow
			}
			cycles += c.cost3
			pn[c.op]++
			pc++
			continue

		case cBlock:
			// Twin of runCore's cBlock case. Each completed uop counts
			// under its OWN cop (copConstituents[cBlock] is empty, so the
			// flush never expands cBlock itself): pn[u.op]++ at the bottom
			// of the inner body mirrors the per-dispatch counting the uop
			// would get in the plain stream. Early exits return before the
			// count, matching the plain cores' not-counted-on-exit rule;
			// the driver's evMemSlow correction then lands on the plain
			// cinstr at the returned index.
			d := &blocks[c.a]
			if d.steps > limit-steps+1 {
				steps--
				pc = int(d.start)
				continue
			}
			uops := d.uops
			npc := int(c.t0)
			for j := 0; j < len(uops); j++ {
				u := &uops[j]
				switch u.op {
				case cNop:
				case cConst:
					regs[u.dst] = u.imm
				case cMov:
					regs[u.dst] = regs[u.a]
				case cAdd:
					regs[u.dst] = regs[u.a] + regs[u.b]
				case cSub:
					regs[u.dst] = regs[u.a] - regs[u.b]
				case cMul:
					regs[u.dst] = regs[u.a] * regs[u.b]
				case cDiv:
					if regs[u.b] == 0 {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst] = regs[u.a] / regs[u.b]
				case cMod:
					if regs[u.b] == 0 {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst] = regs[u.a] % regs[u.b]
				case cAnd:
					regs[u.dst] = regs[u.a] & regs[u.b]
				case cOr:
					regs[u.dst] = regs[u.a] | regs[u.b]
				case cXor:
					regs[u.dst] = regs[u.a] ^ regs[u.b]
				case cShl:
					regs[u.dst] = regs[u.a] << (uint64(regs[u.b]) & 63)
				case cShr:
					regs[u.dst] = regs[u.a] >> (uint64(regs[u.b]) & 63)
				case cNeg:
					regs[u.dst] = -regs[u.a]
				case cNot:
					regs[u.dst] = ^regs[u.a]
				case cSetZ:
					if regs[u.a] == 0 {
						regs[u.dst] = 1
					} else {
						regs[u.dst] = 0
					}
				case cEq:
					regs[u.dst] = b2i(regs[u.a] == regs[u.b])
				case cNe:
					regs[u.dst] = b2i(regs[u.a] != regs[u.b])
				case cLt:
					regs[u.dst] = b2i(regs[u.a] < regs[u.b])
				case cLe:
					regs[u.dst] = b2i(regs[u.a] <= regs[u.b])
				case cGt:
					regs[u.dst] = b2i(regs[u.a] > regs[u.b])
				case cGe:
					regs[u.dst] = b2i(regs[u.a] >= regs[u.b])

				case cLoad8:
					addr := uint64(regs[u.a])
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)
				case cLoad4s:
					addr := uint64(regs[u.a])
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(int32(v))
				case cLoad4u:
					addr := uint64(regs[u.a])
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)
				case cLoad1s:
					addr := uint64(regs[u.a])
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(int8(v))
				case cLoad1u:
					addr := uint64(regs[u.a])
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst] = int64(v)

				case cStore8:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, uint64(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, uint64(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, uint64(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cStore4:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
						put4(hd, hb, addr, uint32(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
						put4(d2, b2, addr, uint32(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cStore1:
					addr := uint64(regs[u.a])
					if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
						put1(hd, hb, addr, byte(regs[u.b]))
					} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(regs[u.b]))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
						put1(d2, b2, addr, byte(regs[u.b]))
					} else {
						cycles += d.prefix[j]
						steps += uint64(d.psteps[j])
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddrLocal:
					regs[u.dst] = int64(base + uint64(offsets[u.sym]))
				case cAddrConst:
					regs[u.dst] = u.imm

				case cConstAdd:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] + regs[u.b]
				case cConstSub:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] - regs[u.b]
				case cConstMul:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
				case cConstDiv:
					regs[u.dst] = u.imm
					if regs[u.b] == 0 {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst2] = regs[u.a] / regs[u.b]
				case cConstMod:
					regs[u.dst] = u.imm
					if regs[u.b] == 0 {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evDivZero
					}
					regs[u.dst2] = regs[u.a] % regs[u.b]
				case cConstAnd:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] & regs[u.b]
				case cConstOr:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] | regs[u.b]
				case cConstXor:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] ^ regs[u.b]
				case cConstShl:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] << (uint64(regs[u.b]) & 63)
				case cConstShr:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] >> (uint64(regs[u.b]) & 63)

				case cAddrLoad8:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has8(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get8(sd, sb, addr)
					regs[u.dst2] = int64(v)
				case cAddrLoad4s:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has4(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get4(sd, sb, addr)
					regs[u.dst2] = int64(int32(v))
				case cAddrLoad4u:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has4(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get4(sd, sb, addr)
					regs[u.dst2] = int64(v)
				case cAddrLoad1s:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has1(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get1(sd, sb, addr)
					regs[u.dst2] = int64(int8(v))
				case cAddrLoad1u:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					sd, sb, se := stk.View()
					if !has1(sb, se, addr) {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get1(sd, sb, addr)
					regs[u.dst2] = int64(v)

				case cAddrStore8:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, uint64(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddrStore4:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddrStore1:
					addr := base + uint64(offsets[u.sym])
					regs[u.dst] = int64(addr)
					if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(regs[u.b]))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddLoad8:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)
				case cAddLoad4s:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(int32(v))
				case cAddLoad4u:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v uint32
					if hd, hb, he := hot.View(); has4(hb, he, addr) {
						v = get4(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has4(sb, se, addr) {
						v = get4(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has4(b2, e2, addr) {
						v = get4(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)
				case cAddLoad1s:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(int8(v))
				case cAddLoad1u:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					var v byte
					if hd, hb, he := hot.View(); has1(hb, he, addr) {
						v = get1(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has1(sb, se, addr) {
						v = get1(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has1(b2, e2, addr) {
						v = get1(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.dst2] = int64(v)

				case cAddStore8:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, val)
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, val)
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, val)
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddStore4:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has4(hb, he, addr) {
						put4(hd, hb, addr, uint32(val))
					} else if sd, sb, se := stk.View(); stk.Writable && has4(sb, se, addr) {
						put4(sd, sb, addr, uint32(val))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has4(b2, e2, addr) {
						put4(d2, b2, addr, uint32(val))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}
				case cAddStore1:
					sum := regs[u.a] + regs[u.b]
					regs[u.dst] = sum
					addr := uint64(sum)
					val := uint64(regs[u.dst2])
					if hd, hb, he := hot.View(); hot.Writable && has1(hb, he, addr) {
						put1(hd, hb, addr, byte(val))
					} else if sd, sb, se := stk.View(); stk.Writable && has1(sb, se, addr) {
						put1(sd, sb, addr, byte(val))
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has1(b2, e2, addr) {
						put1(d2, b2, addr, byte(val))
					} else {
						cycles += d.prefix[j] + u.cost
						steps += uint64(d.psteps[j]) + 1
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cAddrAddrLoad8:
					regs[u.dst] = int64(base + uint64(offsets[u.sym]))
					addr := base + uint64(offsets[u.t0])
					regs[u.a] = int64(addr)
					sd, sb, se := stk.View()
					if !has8(sb, se, addr) {
						cycles += d.prefix[j] + u.cost + u.cost
						steps += uint64(d.psteps[j]) + 2
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					v := get8(sd, sb, addr)
					regs[u.dst2] = int64(v)

				case cMulLoad8:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
					sum := regs[u.t0] + regs[u.dst2]
					regs[u.t1] = sum
					addr := uint64(sum)
					var v uint64
					if hd, hb, he := hot.View(); has8(hb, he, addr) {
						v = get8(hd, hb, addr)
					} else if sd, sb, se := stk.View(); has8(sb, se, addr) {
						v = get8(sd, sb, addr)
					} else if d2, b2, e2 := hot2.View(); has8(b2, e2, addr) {
						v = get8(d2, b2, addr)
					} else {
						cycles += d.prefix[j] + u.cost + u.cost2 + u.cost
						steps += uint64(d.psteps[j]) + 3
						return int(d.start) + j, cycles, steps, evMemSlow
					}
					regs[u.sym] = int64(v)
				case cMulStore8:
					regs[u.dst] = u.imm
					regs[u.dst2] = regs[u.a] * regs[u.b]
					sum := regs[u.t0] + regs[u.dst2]
					regs[u.t1] = sum
					addr := uint64(sum)
					val := uint64(regs[u.sym])
					if hd, hb, he := hot.View(); hot.Writable && has8(hb, he, addr) {
						put8(hd, hb, addr, val)
					} else if sd, sb, se := stk.View(); stk.Writable && has8(sb, se, addr) {
						put8(sd, sb, addr, val)
					} else if d2, b2, e2 := hot2.View(); hot2.Writable && has8(b2, e2, addr) {
						put8(d2, b2, addr, val)
					} else {
						cycles += d.prefix[j] + u.cost + u.cost2 + u.cost
						steps += uint64(d.psteps[j]) + 3
						return int(d.start) + j, cycles, steps, evMemSlow
					}

				case cJmp:
					npc = int(u.t0)
				case cBr:
					if regs[u.a] != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cEqBr:
					v := b2i(regs[u.a] == regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cNeBr:
					v := b2i(regs[u.a] != regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cLtBr:
					v := b2i(regs[u.a] < regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cLeBr:
					v := b2i(regs[u.a] <= regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cGtBr:
					v := b2i(regs[u.a] > regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cGeBr:
					v := b2i(regs[u.a] >= regs[u.b])
					regs[u.dst] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstEqBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] == regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstNeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] != regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstLtBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] < regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstLeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] <= regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstGtBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] > regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}
				case cConstGeBr:
					regs[u.dst] = u.imm
					v := b2i(regs[u.a] >= regs[u.b])
					regs[u.dst2] = v
					if v != 0 {
						npc = int(u.t0)
					} else {
						npc = int(u.t1)
					}

				default:
					// Unreachable: the miner only admits uops with a case
					// above. Surface as evBad at the plain index.
					cycles += d.prefix[j]
					steps += uint64(d.psteps[j])
					return int(d.start) + j, cycles, steps, evBad
				}
				pn[u.op]++
			}
			cycles += d.cost
			steps += d.steps - 1
			pc = npc
			continue

		default: // cBad and anything unrecognized
			return pc, cycles, steps, evBad
		}
		cycles += c.cost
		pn[c.op]++
		pc++
	}
}
