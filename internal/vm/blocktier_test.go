package vm

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/layout"
	"repro/internal/rng"
)

// blockProbeSrc has a hot inner loop (array writes, arithmetic, a
// conditional) nested in calls, so the miner sees hot leaders in more than
// one function and the blocks cover fused memory ops as well as plain ALU.
const blockProbeSrc = `
long glob;

long leaf(long x) {
	long a[8];
	long i;
	i = 0;
	while (i < 8) {
		a[i] = x * i + 3;
		i = i + 1;
	}
	return a[3] + a[7] % 5;
}

long main() {
	long i;
	long acc;
	acc = 0;
	i = 0;
	while (i < 4000) {
		acc = acc + leaf(i) + (i & 7);
		glob = glob + (acc & 15);
		i = i + 1;
	}
	return acc & 65535;
}
`

var blockProbeProg = compile.MustCompile("blockprobe.c", blockProbeSrc)

// blockBranchTargets collects every stream index a branch-family cinstr in
// cs can transfer to.
func blockBranchTargets(cs []cinstr) []int32 {
	var ts []int32
	for i := range cs {
		c := &cs[i]
		switch c.op {
		case cJmp:
			ts = append(ts, c.t0)
		case cBr, cEqBr, cNeBr, cLtBr, cLeBr, cGtBr, cGeBr,
			cConstEqBr, cConstNeBr, cConstLtBr, cConstLeBr, cConstGtBr, cConstGeBr:
			ts = append(ts, c.t0, c.t1)
		}
	}
	return ts
}

// resolveOverlay maps any overlay-stream index to the plain index it
// represents (identity for plain indexes, block leader for cBlocks).
// Returns -1 for an out-of-range or non-cBlock overlay index.
func resolveOverlay(t int32, out []cinstr, nPlain int, blocks []blockDesc) int32 {
	if int(t) < nPlain {
		return t
	}
	if int(t) >= len(out) || out[t].op != cBlock {
		return -1
	}
	return blocks[out[t].a].start
}

// TestBlockFormationInvariants pins the structural contract of the overlay
// block stream: plain copies intact, exact prefix sums, redirects only to
// equivalent superinstructions, and no block interior ever swallowing a
// jump target — including the indexes a fault handler resumes at
// (d.start+j and d.start+j+1 for every j), which must hold the original
// per-constituent cinstrs.
func TestBlockFormationInvariants(t *testing.T) {
	cc := NewCodeCache()
	costs := DefaultCosts()
	m := New(blockProbeProg, layout.NewFixed(), &Env{}, &Options{
		TRNG: rng.SeededTRNG(1), Exec: TierBlock, CodeCache: cc,
	})
	bp := m.ccode
	base := cc.compiled(blockProbeProg, costs, 0, m.globalAddr, m.dataAddr)
	if bp == base {
		t.Fatal("no blocks formed for the hot probe program")
	}
	ct := buildCostTableFrom(&costs, 0)

	totalBlocks := 0
	for fi := range bp.funcs {
		bf := &bp.funcs[fi]
		pf := &base.funcs[fi]
		nPlain := len(pf.code)
		totalBlocks += len(bf.blocks)

		if len(bf.code) != nPlain+len(bf.blocks) {
			t.Fatalf("func %d: overlay length %d != plain %d + %d blocks",
				fi, len(bf.code), nPlain, len(bf.blocks))
		}
		if got := resolveOverlay(bf.entry, bf.code, nPlain, bf.blocks); got != 0 {
			t.Fatalf("func %d: entry %d resolves to plain %d, want 0", fi, bf.entry, got)
		}

		// Jump targets of the PLAIN stream: no block interior may contain one.
		isTarget := make(map[int32]bool)
		for _, tgt := range blockBranchTargets(pf.code) {
			isTarget[tgt] = true
		}

		for bi, d := range bf.blocks {
			k := len(d.uops)
			if k < blockMinUops || k > blockMaxUops {
				t.Fatalf("func %d block %d: %d uops outside [%d,%d]", fi, bi, k, blockMinUops, blockMaxUops)
			}
			if int(d.start)+k > nPlain {
				t.Fatalf("func %d block %d: covers past plain stream", fi, bi)
			}
			// Exact prefix/total sums.
			var cost float64
			var steps uint64
			for j := range d.uops {
				if d.prefix[j] != cost || uint64(d.psteps[j]) != steps {
					t.Fatalf("func %d block %d uop %d: prefix (%v,%d) != running (%v,%d)",
						fi, bi, j, d.prefix[j], d.psteps[j], cost, steps)
				}
				cost += copCost(&d.uops[j])
				steps += copSteps(d.uops[j].op)
			}
			if d.cost != cost || d.steps != steps {
				t.Fatalf("func %d block %d: totals (%v,%d) != sums (%v,%d)",
					fi, bi, d.cost, d.steps, cost, steps)
			}
			if cost != math.Trunc(cost) {
				t.Fatalf("func %d block %d: pre-summed cost %v is not integral", fi, bi, cost)
			}
			for j := range d.uops {
				idx := d.start + int32(j)
				// Interior indexes (j>0) must not be jump targets: a branch
				// into the middle of a covered run would otherwise re-execute
				// under different accounting.
				if j > 0 && isTarget[idx] {
					t.Fatalf("func %d block %d: interior index %d is a jump target", fi, bi, idx)
				}
				// Fault re-entry: the plain copy under every uop must be the
				// original cinstr, so a mid-block exit at d.start+j (and the
				// driver's pc+1 resume) replays identical semantics.
				u := d.uops[j]
				p := pf.code[idx]
				if !cinstrEqualModRemap(&u, &p, nPlain, bf.code, bf.blocks) {
					t.Fatalf("func %d block %d uop %d: uop %+v != plain copy %+v", fi, bi, j, u, p)
				}
				if bf.code[idx] != p {
					t.Fatalf("func %d block %d: plain copy at %d altered: %+v != %+v",
						fi, bi, idx, bf.code[idx], p)
				}
			}
			// Terminated blocks end in a branch; open blocks continue at the
			// (possibly redirected) instruction after the covered run.
			last := d.uops[k-1].op
			cb := bf.code[nPlain+bi]
			if cb.op != cBlock || int(cb.a) != bi {
				t.Fatalf("func %d: appended instr %d is %+v, want cBlock #%d", fi, nPlain+bi, cb, bi)
			}
			if !blockTerm(last) {
				cont := resolveOverlay(cb.t0, bf.code, nPlain, bf.blocks)
				if cont != d.start+int32(k) {
					t.Fatalf("func %d block %d: continuation resolves to %d, want %d",
						fi, bi, cont, d.start+int32(k))
				}
			}
		}

		// Every overlay branch target must resolve to a plain index equal to
		// the corresponding base target: redirects may only substitute a
		// block for its own leader (satellite: no fused group or block ever
		// swallows a jump target).
		for i := 0; i < nPlain; i++ {
			if !cinstrEqualModRemap(&bf.code[i], &pf.code[i], nPlain, bf.code, bf.blocks) {
				t.Fatalf("func %d: overlay[%d]=%+v diverges from plain %+v beyond target remap",
					fi, i, bf.code[i], pf.code[i])
			}
		}
	}
	if totalBlocks == 0 {
		t.Fatal("block program created but no blocks present")
	}
	_ = ct
}

// cinstrEqualModRemap compares a possibly-remapped cinstr against its plain
// original: equal in every field, except branch targets may point to an
// appended cBlock whose leader is the original target.
func cinstrEqualModRemap(got, want *cinstr, nPlain int, out []cinstr, blocks []blockDesc) bool {
	g := *got
	switch g.op {
	case cJmp:
		if r := resolveOverlay(g.t0, out, nPlain, blocks); r < 0 {
			return false
		} else {
			g.t0 = r
		}
	case cBr, cEqBr, cNeBr, cLtBr, cLeBr, cGtBr, cGeBr,
		cConstEqBr, cConstNeBr, cConstLtBr, cConstLeBr, cConstGtBr, cConstGeBr:
		if r := resolveOverlay(g.t0, out, nPlain, blocks); r < 0 {
			return false
		} else {
			g.t0 = r
		}
		if r := resolveOverlay(g.t1, out, nPlain, blocks); r < 0 {
			return false
		} else {
			g.t1 = r
		}
	}
	return g == *want
}

// TestBlockTierMatchesSwitch is the in-package smoke differential: same
// result, bit-identical cycles, identical step counts across all three
// tiers on the probe program (the full engine x workload matrix lives in
// the top-level tier-differential suite).
func TestBlockTierMatchesSwitch(t *testing.T) {
	run := func(tier ExecTier) (int64, Stats) {
		m := New(blockProbeProg, layout.NewFixed(), &Env{}, &Options{
			TRNG: rng.SeededTRNG(7), Exec: tier,
		})
		v, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return v, m.Stats()
	}
	vSw, sSw := run(TierSwitch)
	vTh, sTh := run(TierCompiled)
	vBl, sBl := run(TierBlock)
	if vSw != vBl || vSw != vTh {
		t.Fatalf("results diverge: switch %d threaded %d block %d", vSw, vTh, vBl)
	}
	if sSw != sBl || sSw != sTh {
		t.Fatalf("stats diverge:\nswitch   %+v\nthreaded %+v\nblock    %+v", sSw, sTh, sBl)
	}
}

// TestBlockTierStepLimitSweep drives the careful-bail path: for every step
// limit in a range that lands inside, at, and around block boundaries, the
// block tier must report the StepLimit fault (or clean result) with stats
// bit-identical to the switch oracle.
func TestBlockTierStepLimitSweep(t *testing.T) {
	const src = `
long main() {
	long i;
	long acc;
	acc = 0;
	i = 0;
	while (i < 100000) {
		acc = acc + i * 3 + (acc & 7);
		i = i + 1;
	}
	return acc & 262143;
}`
	prog := compile.MustCompile("sweep.c", src)
	run := func(tier ExecTier, lim uint64) (int64, string, Stats) {
		m := New(prog, layout.NewFixed(), &Env{}, &Options{
			TRNG: rng.SeededTRNG(3), Exec: tier, StepLimit: lim,
		})
		v, err := m.Run()
		es := ""
		if err != nil {
			es = err.Error()
		}
		return v, es, m.Stats()
	}
	for lim := uint64(1); lim <= 600; lim++ {
		vS, eS, sS := run(TierSwitch, lim)
		vB, eB, sB := run(TierBlock, lim)
		if vS != vB || eS != eB || sS != sB {
			t.Fatalf("limit %d: switch (%d,%q,%+v) != block (%d,%q,%+v)",
				lim, vS, eS, sS, vB, eB, sB)
		}
	}
}

// TestBlockTierFallsBackAboveMaxStepLimit pins the exactness guard: above
// blockMaxStepLimit the in-core cycle accumulator could leave float64's
// exact-integer range, so New silently selects the threaded tier.
func TestBlockTierFallsBackAboveMaxStepLimit(t *testing.T) {
	cc := NewCodeCache()
	m := New(testProg("fallback"), layout.NewFixed(), &Env{}, &Options{
		TRNG: rng.SeededTRNG(1), Exec: TierBlock, StepLimit: blockMaxStepLimit + 1, CodeCache: cc,
	})
	if m.ccode == nil {
		t.Fatal("fallback must still use the compiled tier")
	}
	if _, misses := cc.BlockStats(); misses != 0 {
		t.Fatal("fallback must not build a block program")
	}
	if v, err := m.Run(); err != nil || v != 42 {
		t.Fatalf("Run = %d, %v; want 42, nil", v, err)
	}
}

// TestBlockTierNonIntegralCostsUnchanged pins the integrality gate: a cost
// model with a fractional entry must reuse the threaded stream pointer
// (correct execution, no pre-summing).
func TestBlockTierNonIntegralCostsUnchanged(t *testing.T) {
	costs := DefaultCosts()
	costs.Mul = 3.5
	cc := NewCodeCache()
	m := New(blockProbeProg, layout.NewFixed(), &Env{}, &Options{
		TRNG: rng.SeededTRNG(1), Exec: TierBlock, CodeCache: cc, Costs: &costs,
	})
	base := cc.compiled(blockProbeProg, costs, 0, m.globalAddr, m.dataAddr)
	if m.ccode != base {
		t.Fatal("non-integral cost table must disable block formation")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockCacheSharing pins the block-tier cache contract: one build per
// key, pointer sharing across machines, and a distinct entry per cost
// model.
func TestBlockCacheSharing(t *testing.T) {
	cc := NewCodeCache()
	mk := func() *Machine {
		return New(blockProbeProg, layout.NewFixed(), &Env{}, &Options{
			TRNG: rng.SeededTRNG(1), Exec: TierBlock, CodeCache: cc,
		})
	}
	m1 := mk()
	if h, mi := cc.BlockStats(); h != 0 || mi != 1 {
		t.Fatalf("first Machine: want 0/1, got %d/%d", h, mi)
	}
	m2 := mk()
	if h, mi := cc.BlockStats(); h != 1 || mi != 1 {
		t.Fatalf("second Machine: want 1/1, got %d/%d", h, mi)
	}
	if m1.ccode != m2.ccode {
		t.Fatal("identical keys must share one block program")
	}
	if cc.BlockLen() != 1 {
		t.Fatalf("BlockLen = %d, want 1", cc.BlockLen())
	}
}

// TestCancelledRunProfileFlush is the satellite-2 regression test: a run
// cancelled by the RunContext watchdog with a Profile attached must still
// reconcile exactly — every executed instruction attributed (op counts sum
// to Stats.Instructions) and the row cycles matching Stats.Cycles — on all
// three tiers. Cancellation polls fire only at fused-group/block
// boundaries, so the flush never sees a half-attributed group.
func TestCancelledRunProfileFlush(t *testing.T) {
	const src = `
long work(long n) {
	long acc;
	long i;
	acc = 0;
	i = 0;
	while (i < n) {
		acc = acc + i * 7 + (acc & 3);
		i = i + 1;
	}
	return acc;
}

long main() {
	long r;
	r = 0;
	while (r >= 0) {
		r = r + (work(5000) & 1);
	}
	return r;
}`
	prog := compile.MustCompile("cancelprof.c", src)
	for _, tc := range []struct {
		name string
		tier ExecTier
	}{{"switch", TierSwitch}, {"threaded", TierCompiled}, {"block", TierBlock}} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProfile()
			m := New(prog, layout.NewFixed(), &Env{}, &Options{
				TRNG: rng.SeededTRNG(5), Exec: tc.tier, StepLimit: 1 << 32, Prof: p,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := m.RunContext(ctx)
			var c *Canceled
			if !errors.As(err, &c) {
				t.Fatalf("want *Canceled, got %v", err)
			}
			st := m.Stats()
			if st.Instructions == 0 {
				t.Fatal("no instructions before cancellation")
			}
			var steps uint64
			var cyc float64
			for _, r := range p.Rows() {
				if r.Kind == "op" {
					steps += r.Count
				}
				cyc += r.Cycles
			}
			if steps != st.Instructions {
				t.Fatalf("cancelled-run profile lost instructions: rows %d, stats %d",
					steps, st.Instructions)
			}
			if rel := math.Abs(cyc-st.Cycles) / st.Cycles; rel >= 1e-9 {
				t.Fatalf("cancelled-run cycle drift: rows %v, stats %v (rel %g)", cyc, st.Cycles, rel)
			}
		})
	}
}

// TestFaultedRunProfileFlush extends the satellite audit to typed faults: a
// divide-by-zero raised deep in a call chain unwinds every live frame past
// the interpreter's attribution tail, and the profile must still account
// for every consumed step (this is the path that loses the in-flight
// OpCall/OpCallHost dispatches without pre-attribution).
func TestFaultedRunProfileFlush(t *testing.T) {
	const src = `
long inner(long d) {
	long i;
	long acc;
	acc = 0;
	i = 0;
	while (i < 200) {
		acc = acc + i * 3;
		i = i + 1;
	}
	return acc / d;
}

long mid(long n) {
	return inner(n - 1) + 1;
}

long main() {
	long i;
	long acc;
	acc = 0;
	i = 5;
	while (i >= 0) {
		acc = acc + mid(i);
		i = i - 1;
	}
	return acc;
}`
	prog := compile.MustCompile("faultprof.c", src)
	for _, tc := range []struct {
		name string
		tier ExecTier
	}{{"switch", TierSwitch}, {"threaded", TierCompiled}, {"block", TierBlock}} {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProfile()
			m := New(prog, layout.NewFixed(), &Env{}, &Options{
				TRNG: rng.SeededTRNG(5), Exec: tc.tier, Prof: p,
			})
			_, err := m.Run()
			var dz *DivideByZero
			if !errors.As(err, &dz) {
				t.Fatalf("want *DivideByZero, got %v", err)
			}
			st := m.Stats()
			var steps uint64
			var cyc float64
			for _, r := range p.Rows() {
				if r.Kind == "op" {
					steps += r.Count
				}
				cyc += r.Cycles
			}
			if steps != st.Instructions {
				t.Fatalf("faulted-run profile lost instructions: rows %d, stats %d",
					steps, st.Instructions)
			}
			if rel := math.Abs(cyc-st.Cycles) / st.Cycles; rel >= 1e-9 {
				t.Fatalf("faulted-run cycle drift: rows %v, stats %v (rel %g)", cyc, st.Cycles, rel)
			}
		})
	}
}

// TestPrewarmBlockTier pins that PrewarmBlockTier fills the default cache:
// a Machine built afterwards for the same program must hit, not build.
func TestPrewarmBlockTier(t *testing.T) {
	prog := compile.MustCompile("prewarm.c", blockProbeSrc)
	PrewarmBlockTier(prog)
	_, missBefore := defaultCodeCache.BlockStats()
	New(prog, layout.NewFixed(), &Env{}, &Options{TRNG: rng.SeededTRNG(2), Exec: TierBlock})
	if _, missAfter := defaultCodeCache.BlockStats(); missAfter != missBefore {
		t.Fatalf("prewarmed program rebuilt its block stream: misses %d -> %d", missBefore, missAfter)
	}
}
