package vm

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/layout"
)

// MachinePool recycles Machines across runs. A Get with a compatible
// cached Machine costs one Reset (copy-on-reset memory restore plus the
// per-run arming New would do anyway) instead of a full construction —
// segment mapping, the 8 MiB stack allocation, image copies and compiled
// stream lookups are all amortized away, and the steady state allocates
// nothing per run (BenchmarkRunSetup pins both properties).
//
// Machines pool by construction shape: program identity, cost model,
// resolved execution tier, code cache, step/depth/heap bounds, and the
// engine's dual-stack class. Everything else — the specific engine
// instance, TRNG, jitter, hooks, profiler — is per-run state that Reset
// re-arms, so a fig3-style cell that runs a baseline engine and then four
// schemes over the same workload reuses one Machine for all of them.
//
// The pool is safe for concurrent Get/Put (the experiment runner's
// worker-per-cell model); each pooled Machine is still single-goroutine
// property of whoever holds it between Get and Put.
type MachinePool struct {
	mu   sync.Mutex
	free map[poolKey][]*Machine

	// maxPerKey bounds retained Machines per key; excess Puts are dropped
	// so pool growth stays bounded by grid concurrency, not grid size.
	maxPerKey int

	hits     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	drops    atomic.Uint64
	restored atomic.Uint64
}

// poolKey is the construction shape Machines pool under. Comparable by
// value: pointers compare by identity (program and cache identity is
// exactly the sharing contract the code cache itself uses).
type poolKey struct {
	prog      *ir.Program
	costs     Costs
	stepLimit uint64
	maxDepth  int
	heapSize  uint64
	tier      ExecTier
	cache     *CodeCache
	dualStack bool
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	Hits          uint64 // Gets served by resetting a cached Machine
	Misses        uint64 // Gets that fell back to New
	Puts          uint64 // Machines returned and retained
	Drops         uint64 // Machines returned but discarded (full or unpoolable)
	RestoredBytes uint64 // cumulative copy-on-reset bytes (mem.snapshot feed)
}

// DefaultMaxPerKey bounds retained Machines per pool key. Sized for the
// experiment runner's worker pool: more simultaneous holders than this
// means the extra Machines are constructed fresh and dropped on return.
const DefaultMaxPerKey = 32

// NewMachinePool creates an empty pool. maxPerKey <= 0 selects
// DefaultMaxPerKey.
func NewMachinePool(maxPerKey int) *MachinePool {
	if maxPerKey <= 0 {
		maxPerKey = DefaultMaxPerKey
	}
	return &MachinePool{free: make(map[poolKey][]*Machine), maxPerKey: maxPerKey}
}

// keyFor computes the pool key New(prog, engine, _, opts) would construct
// under.
func keyFor(prog *ir.Program, engine layout.Engine, opts *Options) poolKey {
	o := normalizeOptions(engine, opts)
	cache := o.CodeCache
	if cache == nil {
		cache = defaultCodeCache
	}
	_, dualStack := engine.(layout.DualStacker)
	return poolKey{
		prog:      prog,
		costs:     costsOf(&o),
		stepLimit: o.StepLimit,
		maxDepth:  o.MaxCallDepth,
		heapSize:  o.HeapSize,
		tier:      resolveTier(&o),
		cache:     cache,
		dualStack: dualStack,
	}
}

// Get returns a Machine ready to run prog under engine with the given
// env/opts — a recycled one when the pool holds a compatible Machine
// (reset to bit-identical fresh state), a newly constructed one
// otherwise. New Machines are sealed for reuse before their first run so
// they can re-enter the pool via Put.
func (p *MachinePool) Get(prog *ir.Program, engine layout.Engine, env *Env, opts *Options) *Machine {
	key := keyFor(prog, engine, opts)
	p.mu.Lock()
	var m *Machine
	if list := p.free[key]; len(list) > 0 {
		m = list[len(list)-1]
		p.free[key] = list[:len(list)-1]
	}
	p.mu.Unlock()
	if m != nil {
		restored, err := m.Reset(engine, env, opts)
		if err == nil {
			p.hits.Add(1)
			p.restored.Add(restored)
			return m
		}
		// Structurally incompatible despite the key match (should not
		// happen; defensive): drop it and construct fresh.
		p.drops.Add(1)
	}
	p.misses.Add(1)
	m = New(prog, engine, env, opts)
	m.SealForReuse()
	return m
}

// Put returns a Machine obtained from Get to the pool. Machines that
// cannot be soundly reused — construction-faulted, never sealed — and
// Machines beyond the per-key retention bound are dropped for the
// collector instead. Put(nil) is a no-op so error paths can return
// unconditionally.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	if m.initErr != nil || !m.Mem.Sealed() {
		p.drops.Add(1)
		return
	}
	key := poolKey{
		prog:      m.Prog,
		costs:     m.costs,
		stepLimit: m.stepLimit,
		maxDepth:  m.maxDepth,
		heapSize:  m.heap.Size(),
		tier:      m.tier,
		cache:     m.codeCache,
		dualStack: m.ustack != nil,
	}
	p.mu.Lock()
	list := p.free[key]
	if len(list) >= p.maxPerKey {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.free[key] = append(list, m)
	p.mu.Unlock()
	p.puts.Add(1)
}

// Stats snapshots the pool counters. Safe to call concurrently with
// Get/Put; reading costs nothing when nobody asks (the counters are plain
// atomics the hot path touches once per run, not per step).
func (p *MachinePool) Stats() PoolStats {
	return PoolStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Puts:          p.puts.Load(),
		Drops:         p.drops.Load(),
		RestoredBytes: p.restored.Load(),
	}
}

// Drain empties the pool, releasing every retained Machine to the
// collector. Bounds long-lived memory between experiment phases.
func (p *MachinePool) Drain() {
	p.mu.Lock()
	for k := range p.free {
		delete(p.free, k)
	}
	p.mu.Unlock()
}
