package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/layout"
	"repro/internal/rng"
)

// shadowSpinSrc keeps several call frames live at all times (main -> outer
// -> inner) so a watchdog cancellation almost certainly lands mid-call,
// with return tokens on the disjoint shadow stack.
const shadowSpinSrc = `
long inner(long x) {
	long i;
	long acc;
	acc = x;
	i = 0;
	while (i < 500) {
		acc = acc + i * 3 + (acc & 7);
		i = i + 1;
	}
	return acc;
}

long outer(long x) {
	return inner(x) + inner(x + 1);
}

long main() {
	long r;
	r = 0;
	while (r >= 0) {
		r = (r + outer(r)) & 1048575;
	}
	return r;
}`

// TestShadowStackBalancedAfterWatchdogCancel is the satellite regression
// test for cancellation under the shadowstack engine: when RunContext's
// watchdog kills a run while nested calls are live, every unwound frame
// must pop its return token (popFrame truncates to savedShadow), leaving
// the shadow stack empty and the machine fully re-runnable — on all three
// executor tiers.
func TestShadowStackBalancedAfterWatchdogCancel(t *testing.T) {
	prog := compile.MustCompile("shadowspin.c", shadowSpinSrc)
	for _, tc := range []struct {
		name string
		tier ExecTier
	}{{"switch", TierSwitch}, {"threaded", TierCompiled}, {"block", TierBlock}} {
		t.Run(tc.name, func(t *testing.T) {
			m := New(prog, layout.NewShadowStack(), &Env{}, &Options{
				TRNG: rng.SeededTRNG(9), Exec: tc.tier, StepLimit: 1 << 32,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := m.RunContext(ctx)
			var c *Canceled
			if !errors.As(err, &c) {
				t.Fatalf("want *Canceled, got %v", err)
			}
			if len(m.shadow) != 0 {
				t.Fatalf("shadow stack unbalanced after cancellation: %d live tokens", len(m.shadow))
			}
			if len(m.frames) != 0 {
				t.Fatalf("frame stack unbalanced after cancellation: %d live frames", len(m.frames))
			}
			// Re-runnable: the cancelled machine must execute fresh calls
			// with intact shadow-stack integrity checks, repeatably.
			v1, err := m.CallByName("outer", 3)
			if err != nil {
				t.Fatalf("CallByName after cancellation: %v", err)
			}
			v2, err := m.CallByName("outer", 3)
			if err != nil || v2 != v1 {
				t.Fatalf("second call diverged: %d, %v (want %d, nil)", v2, err, v1)
			}
			if len(m.shadow) != 0 {
				t.Fatalf("shadow stack leaked tokens across calls: %d", len(m.shadow))
			}
		})
	}
}
