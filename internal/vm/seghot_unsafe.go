//go:build amd64 || arm64

package vm

import "unsafe"

// Little-endian targets with cheap unaligned access: the unchecked
// segment accessors compile to a single load/store. Inside the
// interpreter cores even encoding/binary's LittleEndian.Uint64 stays an
// out-of-line CALL (the big-function inliner only accepts callees
// costing <= 20, and the byte-assembly body is larger), so these use a
// direct unsafe load instead. Safety: every call site has already
// checked has8/has4 against the segment view, so addr-base .. +width
// lies inside data; &data[addr-base] keeps the compiler's own bounds
// check on the first byte.

func get8(data []byte, base, addr uint64) uint64 {
	return *(*uint64)(unsafe.Pointer(&data[addr-base]))
}

func get4(data []byte, base, addr uint64) uint32 {
	return *(*uint32)(unsafe.Pointer(&data[addr-base]))
}

func put8(data []byte, base, addr, val uint64) {
	*(*uint64)(unsafe.Pointer(&data[addr-base])) = val
}

func put4(data []byte, base, addr uint64, val uint32) {
	*(*uint32)(unsafe.Pointer(&data[addr-base])) = val
}
