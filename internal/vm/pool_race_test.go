package vm

// Race hammer for MachinePool: concurrent Get/Run/Put across several pool
// keys, with Stats readers and Drain calls in flight. Run under -race this
// pins the pool's concurrency contract: counters stay monotone and
// consistent, per-key retention never exceeds the bound, and a recycled
// Machine always produces the same result as a fresh one.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compile"
	"repro/internal/layout"
	"repro/internal/rng"
)

const poolRaceSrc = `
long gsum = 1;
long main() {
	long i = 0;
	while (i < 64) { gsum = gsum + i; i = i + 1; }
	return gsum;
}`

const poolRaceWant = 1 + 63*64/2

func TestMachinePoolRaceHammer(t *testing.T) {
	prog := compile.MustCompile("poolrace.c", poolRaceSrc)
	const (
		workers   = 8
		iters     = 150
		keys      = 4
		maxPerKey = 3
	)
	pool := NewMachinePool(maxPerKey)
	var gets, putCalls atomic.Uint64
	done := make(chan struct{})

	// Stats reader: every counter must be monotone under concurrent
	// Get/Put/Drain.
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		var prev PoolStats
		for {
			select {
			case <-done:
				return
			default:
			}
			s := pool.Stats()
			if s.Hits < prev.Hits || s.Misses < prev.Misses ||
				s.Puts < prev.Puts || s.Drops < prev.Drops ||
				s.RestoredBytes < prev.RestoredBytes {
				t.Errorf("pool stats went backwards: %+v then %+v", prev, s)
				return
			}
			prev = s
			runtime.Gosched()
		}
	}()

	// Drain hammer: periodic Drain must not upset anything — at worst it
	// costs the next Gets a construction.
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%64 == 0 {
				pool.Drain()
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Distinct StepLimits give distinct pool keys, so the
				// per-key bound is exercised across a populated map.
				k := (w + i) % keys
				opts := &Options{
					TRNG:      rng.SeededTRNG(uint64(w*1_000_003 + i)),
					StepLimit: uint64(1_000_000 * (k + 1)),
				}
				m := pool.Get(prog, layout.NewFixed(), &Env{}, opts)
				gets.Add(1)
				v, err := m.Run()
				if err != nil {
					t.Errorf("worker %d iter %d: run failed: %v", w, i, err)
					return
				}
				if v != poolRaceWant {
					t.Errorf("worker %d iter %d: got %d, want %d (pooled Machine diverged)", w, i, v, poolRaceWant)
					return
				}
				pool.Put(m)
				putCalls.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	statsWG.Wait()

	s := pool.Stats()
	if got := s.Hits + s.Misses; got != gets.Load() {
		t.Errorf("hits %d + misses %d = %d, want %d Gets", s.Hits, s.Misses, got, gets.Load())
	}
	if s.Puts > putCalls.Load() {
		t.Errorf("puts %d exceeds %d Put calls", s.Puts, putCalls.Load())
	}
	if got := s.Puts + s.Drops; got < putCalls.Load() {
		t.Errorf("puts %d + drops %d = %d, want >= %d Put calls", s.Puts, s.Drops, got, putCalls.Load())
	}

	// The retention bound must hold for every key even after the race
	// (internal inspection — this is why the test lives in package vm).
	pool.mu.Lock()
	for k, list := range pool.free {
		if len(list) > maxPerKey {
			t.Errorf("key %+v retains %d Machines, bound %d", k, len(list), maxPerKey)
		}
	}
	pool.mu.Unlock()
}
