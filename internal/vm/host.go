// Host (builtin) function implementations: the libc-ish surface MiniC
// programs call. String and memory routines have authentic C semantics —
// they trust their arguments and will happily write past the caller's
// buffer, which is exactly what the vulnerable programs in the attack
// corpus do.

package vm

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ir"
	"repro/internal/mem"
)

// cstringMax bounds string scans so a missing NUL terminator inside a huge
// segment still terminates.
const cstringMax = 1 << 20

// HostHook observes every host (builtin) call. Both execution tiers route
// host calls through the same wrapper, so a deterministic hook — the fault
// injector is the canonical one — perturbs both tiers identically.
type HostHook interface {
	// EnterHost runs before the builtin dispatches. extraCycles is added to
	// the modeled cost (a delay fault); a non-nil error fails the call site
	// instead of dispatching (wrapped in a MemFault carrying the builtin
	// name and pc).
	EnterHost(name string) (extraCycles float64, err error)
	// ExitHost observes the builtin's successful return value and may
	// replace it (a corruption fault). Identity for healthy calls.
	ExitHost(name string, ret int64) int64
}

// hostCall is the tier-shared entry for builtin calls: hook bookkeeping
// around hostDispatch. With no hook installed (and no profile attached)
// it is a plain tail call.
func (m *Machine) hostCall(fn *ir.Function, pc int, host int, args []int64) (int64, error) {
	if m.prof != nil {
		// Capture the builtin's whole modeled cost (HostBase + per-op
		// pricing + any hook delay) as a stats delta: host cycles are added
		// to stats directly rather than through the exec accumulators, so a
		// delta around the dispatch is the exact attribution.
		before := m.stats.Cycles
		v, err := m.hostCallHooked(fn, pc, host, args)
		m.profHostCalls++
		m.profHostCycles += m.stats.Cycles - before
		return v, err
	}
	return m.hostCallHooked(fn, pc, host, args)
}

func (m *Machine) hostCallHooked(fn *ir.Function, pc int, host int, args []int64) (int64, error) {
	if m.hostHook == nil {
		return m.hostDispatch(fn, pc, host, args)
	}
	if host < 0 || host >= len(hostNames) {
		return 0, fmt.Errorf("vm: bad host index %d in %s", host, fn.Name)
	}
	name := hostNames[host]
	extra, err := m.hostHook.EnterHost(name)
	m.stats.Cycles += extra
	if err != nil {
		return 0, &MemFault{Func: fn.Name + " (" + name + ")", PC: pc, Err: err}
	}
	v, err := m.hostDispatch(fn, pc, host, args)
	if err != nil {
		return v, err
	}
	return m.hostHook.ExitHost(name, v), nil
}

func (m *Machine) hostDispatch(fn *ir.Function, pc int, host int, args []int64) (int64, error) {
	if host < 0 || host >= len(hostNames) {
		return 0, fmt.Errorf("vm: bad host index %d in %s", host, fn.Name)
	}
	name := hostNames[host]
	m.stats.Cycles += m.costs.HostBase
	memFault := func(err error) error {
		// String scans cut short by cstringMax report UnterminatedString,
		// not a segmentation fault: the scan never left mapped memory, so
		// dressing it up as a MemFault would point at a valid address.
		var u *mem.UnterminatedString
		if errors.As(err, &u) {
			return fmt.Errorf("%w in %s (%s) at pc=%d", err, fn.Name, name, pc)
		}
		return &MemFault{Func: fn.Name + " (" + name + ")", PC: pc, Err: err}
	}
	switch name {
	case "print":
		m.Env.Output = strconv.AppendInt(m.Env.Output, args[0], 10)
		m.Env.Output = append(m.Env.Output, '\n')
		return 0, nil
	case "prints":
		s, err := m.Mem.ReadCStringAppend(m.hostBuf[:0], uint64(args[0]), cstringMax)
		m.hostBuf = s[:0]
		if err != nil {
			return 0, memFault(err)
		}
		m.Env.Output = append(m.Env.Output, s...)
		m.stats.Cycles += float64(len(s)) * m.costs.PerByte
		return 0, nil
	case "printc", "outbyte":
		m.Env.Output = append(m.Env.Output, byte(args[0]))
		return 0, nil
	case "input":
		maxN := args[1]
		if maxN < 0 {
			maxN = 0
		}
		var b []byte
		if m.Env.Input != nil {
			b = m.Env.Input(maxN)
		}
		if len(b) > 0 {
			if err := m.Mem.WriteBytes(uint64(args[0]), b); err != nil {
				return 0, memFault(err)
			}
		}
		m.stats.Cycles += m.costs.InputBase + float64(len(b))*m.costs.PerByte
		return int64(len(b)), nil
	case "readint":
		m.stats.Cycles += m.costs.InputBase
		if m.Env.Ints != nil {
			return m.Env.Ints(), nil
		}
		return 0, nil
	case "memcpy":
		n := args[2]
		if n > 0 {
			// Stage through the reusable buffer: reading the whole source
			// before writing keeps the overlapping-range behaviour of the
			// original two-step copy (memmove semantics).
			b, err := m.Mem.ReadBytesAppend(m.hostBuf[:0], uint64(args[1]), int(n))
			m.hostBuf = b[:0]
			if err != nil {
				return 0, memFault(err)
			}
			if err := m.Mem.WriteBytes(uint64(args[0]), b); err != nil {
				return 0, memFault(err)
			}
			m.stats.Cycles += float64(n) * m.costs.PerByte
		}
		return args[0], nil
	case "memset":
		n := args[2]
		if n > 0 {
			if err := m.Mem.Fill(uint64(args[0]), byte(args[1]), int(n)); err != nil {
				return 0, memFault(err)
			}
			m.stats.Cycles += float64(n) * m.costs.PerByte
		}
		return args[0], nil
	case "strlen":
		n, err := m.Mem.CStringLen(uint64(args[0]), cstringMax)
		if err != nil {
			return 0, memFault(err)
		}
		m.stats.Cycles += float64(n) * m.costs.PerByte
		return int64(n), nil
	case "strcpy":
		s, err := m.Mem.ReadCStringAppend(m.hostBuf[:0], uint64(args[1]), cstringMax)
		if err != nil {
			m.hostBuf = s[:0]
			return 0, memFault(err)
		}
		n := len(s)
		s = append(s, 0) // store back after the NUL so a growth here is kept
		m.hostBuf = s[:0]
		if err := m.Mem.WriteBytes(uint64(args[0]), s); err != nil {
			return 0, memFault(err)
		}
		m.stats.Cycles += float64(n) * m.costs.PerByte
		return args[0], nil
	case "strcmp":
		a, err := m.Mem.ReadCStringAppend(m.hostBuf[:0], uint64(args[0]), cstringMax)
		m.hostBuf = a[:0]
		if err != nil {
			return 0, memFault(err)
		}
		b, err := m.Mem.ReadCStringAppend(m.hostBuf2[:0], uint64(args[1]), cstringMax)
		m.hostBuf2 = b[:0]
		if err != nil {
			return 0, memFault(err)
		}
		m.stats.Cycles += float64(min(len(a), len(b))) * m.costs.PerByte
		switch c := bytes.Compare(a, b); {
		case c < 0:
			return -1, nil
		case c > 0:
			return 1, nil
		}
		return 0, nil
	case "sncat":
		return m.sncat(args, memFault)
	case "malloc":
		n := uint64(args[0])
		if n == 0 {
			n = 1
		}
		addr := alignU(m.heapNext, 16)
		if addr+n > m.heap.End() {
			return 0, nil // out of memory: NULL, as malloc does
		}
		m.heapNext = addr + n
		return int64(addr), nil
	case "free":
		return 0, nil // bump allocator: free is a no-op
	case "stackbuf":
		n := uint64(args[0])
		pad := uint64(m.Engine.VLAPad())
		newSP := (m.sp - n - pad) &^ 15
		if newSP < m.stackBase || newSP > m.sp {
			return 0, &StackOverflow{Func: fn.Name}
		}
		m.sp = newSP
		m.notePeak()
		return int64(newSP), nil
	case "exit":
		return 0, &exitRequest{code: args[0]}
	case "abort":
		return 0, &Aborted{}
	case "iodelay":
		if args[0] > 0 {
			m.stats.Cycles += float64(args[0]) * m.Env.IODelayScale
		}
		return 0, nil
	case "sendout":
		n := args[1]
		if n > 0 {
			b, err := m.Mem.ReadBytesAppend(m.hostBuf[:0], uint64(args[0]), int(n))
			m.hostBuf = b[:0]
			if err != nil {
				return 0, memFault(err)
			}
			m.Env.Output = append(m.Env.Output, b...)
			m.stats.Cycles += float64(n) * m.costs.PerByte
		}
		return 0, nil
	}
	return 0, fmt.Errorf("vm: unimplemented host function %s", name)
}

// sncat models snprintf(dst+off, cap-off, ...) over an n-byte record as
// misused by CVE-2018-1000140: it returns off + n whether or not the write
// was truncated, and — like the real bug — once off exceeds cap the size
// argument (cap-off) underflows as a size_t, producing an *unbounded* write
// at dst+off. An attacker who steers the accumulated off past the buffer
// (truncated writes still inflate the return value) therefore gains a
// write-chosen-bytes-at-chosen-offset primitive, the paper's §II-C exploit.
func (m *Machine) sncat(args []int64, memFault func(error) error) (int64, error) {
	dst, capN, off, n := uint64(args[0]), args[1], args[2], args[4]
	if n < 0 {
		n = 0
	}
	var src []byte
	if n > 0 {
		var err error
		src, err = m.Mem.ReadBytesAppend(m.hostBuf[:0], uint64(args[3]), int(n))
		m.hostBuf = src[:0]
		if err != nil {
			return 0, memFault(err)
		}
	}
	m.stats.Cycles += float64(n) * m.costs.PerByte
	avail := capN - off
	w := src
	if avail > 0 && int64(len(w)) > avail {
		// Bounded path: truncate at the buffer's end...
		w = w[:avail]
	}
	// ...but when avail <= 0 the size_t underflow makes the write unbounded.
	if len(w) > 0 {
		if err := m.Mem.WriteBytes(dst+uint64(off), w); err != nil {
			return 0, memFault(err)
		}
	}
	return off + n, nil
}
