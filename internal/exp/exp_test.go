package exp_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exp"
)

// numberedCells builds n cells each emitting one record tagged with its
// index.
func numberedCells(n int) []exp.Cell {
	cells := make([]exp.Cell, n)
	for i := range cells {
		i := i
		cells[i] = exp.Cell{
			Experiment: "t",
			Name:       fmt.Sprintf("c%03d", i),
			Run: func() ([]exp.Record, error) {
				return []exp.Record{{
					Experiment: "t",
					Cell:       fmt.Sprintf("c%03d", i),
					Values:     map[string]float64{"i": float64(i)},
				}}, nil
			},
		}
	}
	return cells
}

func TestRunnerPreservesCellOrder(t *testing.T) {
	cells := numberedCells(64)
	serial := (&exp.Runner{Workers: 1}).Run(cells)
	parallel := (&exp.Runner{Workers: 8}).Run(cells)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel records differ from serial")
	}
	for i, r := range parallel {
		if r.Value("i") != float64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func TestRunnerCapturesErrorsAndPanics(t *testing.T) {
	cells := []exp.Cell{
		numberedCells(1)[0],
		{Experiment: "t", Name: "bad", Run: func() ([]exp.Record, error) {
			return nil, errors.New("boom")
		}},
		{Experiment: "t", Name: "worse", Run: func() ([]exp.Record, error) {
			panic("kaboom")
		}},
	}
	recs := (&exp.Runner{Workers: 4}).Run(cells)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].Cell != "bad" || recs[1].Err != "boom" {
		t.Errorf("error record wrong: %+v", recs[1])
	}
	if recs[2].Cell != "worse" || !strings.Contains(recs[2].Err, "kaboom") {
		t.Errorf("panic record wrong: %+v", recs[2])
	}
	err := exp.Errors(recs)
	if err == nil {
		t.Fatal("Errors should aggregate failures")
	}
	for _, frag := range []string{"t/bad: boom", "t/worse: panic: kaboom"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregate error missing %q: %v", frag, err)
		}
	}
	if exp.Errors(recs[:1]) != nil {
		t.Error("Errors should be nil for clean records")
	}
}

func TestFilter(t *testing.T) {
	recs := []exp.Record{
		{Experiment: "a", Cell: "1"},
		{Experiment: "b", Cell: "2"},
		{Experiment: "a", Cell: "3"},
	}
	got := exp.Filter(recs, "a")
	if len(got) != 2 || got[0].Cell != "1" || got[1].Cell != "3" {
		t.Fatalf("filter wrong: %+v", got)
	}
}

func TestWriteJSON(t *testing.T) {
	recs := []exp.Record{
		{
			Experiment: "fig3",
			Cell:       "perlbench",
			Labels:     map[string]string{"workload": "perlbench", "kind": "cpu"},
			Values:     map[string]float64{"baseline_cycles": 100, "overhead_pct/aes-10": 10.5},
		},
		{Experiment: "fig3", Cell: "gobmk", Err: "step limit"},
	}
	var buf bytes.Buffer
	if err := exp.WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	want0 := `{"experiment":"fig3","cell":"perlbench","labels":{"kind":"cpu","workload":"perlbench"},"values":{"baseline_cycles":100,"overhead_pct/aes-10":10.5}}`
	if lines[0] != want0 {
		t.Errorf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	if !strings.Contains(lines[1], `"err":"step limit"`) {
		t.Errorf("line 1 missing err: %s", lines[1])
	}
}
