package exp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// transientErr is a minimal classified, transient error (the shape the
// faultinject package produces).
type transientErr struct{ msg string }

func (e *transientErr) Error() string      { return e.msg }
func (e *transientErr) ErrorClass() string { return "injected" }
func (e *transientErr) Transient() bool    { return true }

func TestClassifyAndIsTransient(t *testing.T) {
	base := &transientErr{msg: "boom"}
	wrapped := fmt.Errorf("cell: %w", base)
	if Classify(wrapped) != "injected" {
		t.Fatalf("Classify = %q", Classify(wrapped))
	}
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient error must stay transient")
	}
	if Classify(errors.New("plain")) != "" || IsTransient(errors.New("plain")) {
		t.Fatal("plain errors are unclassified and permanent")
	}
}

func TestRetryTransientWithBackoff(t *testing.T) {
	var slept []time.Duration
	fails := 3
	r := &Runner{
		Workers: 1, Retries: 5,
		Backoff: 10 * time.Millisecond, BackoffCap: 15 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		if attempts <= fails {
			return nil, &transientErr{msg: "brownout"}
		}
		return []Record{{Experiment: "e", Cell: "c", Values: map[string]float64{"v": 1}}}, nil
	}}})
	if attempts != 4 {
		t.Fatalf("ran %d attempts, want 4", attempts)
	}
	if len(recs) != 1 || recs[0].Err != "" || recs[0].Attempts != 4 {
		t.Fatalf("records %+v", recs)
	}
	// Backoff doubles then caps: 10ms, 15ms, 15ms.
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestNoRetryForPermanentErrors(t *testing.T) {
	r := &Runner{Workers: 1, Retries: 5}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		return nil, errors.New("genuine bug")
	}}})
	if attempts != 1 {
		t.Fatalf("permanent error retried (%d attempts)", attempts)
	}
	if len(recs) != 1 || recs[0].Err != "genuine bug" || recs[0].ErrClass != "" {
		t.Fatalf("records %+v", recs)
	}
}

func TestRetriesExhaustedKeepsClassification(t *testing.T) {
	r := &Runner{Workers: 1, Retries: 2}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		return nil, &transientErr{msg: "still down"}
	}}})
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", attempts)
	}
	if len(recs) != 1 || recs[0].ErrClass != "injected" || recs[0].Attempts != 3 {
		t.Fatalf("records %+v", recs)
	}
	if UnclassifiedErrors(recs) != nil {
		t.Fatal("classified failure must not count as unclassified")
	}
	if Errors(recs) == nil {
		t.Fatal("Errors must still report the classified failure")
	}
}

func TestPartialRecordsKeptOnFailure(t *testing.T) {
	r := &Runner{Workers: 1}
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		partial := []Record{{Experiment: "e", Cell: "c/a", Values: map[string]float64{"v": 1}}}
		return partial, errors.New("died after a")
	}}})
	if len(recs) != 2 {
		t.Fatalf("want partial + error record, got %+v", recs)
	}
	if recs[0].Cell != "c/a" || recs[0].Err != "" {
		t.Fatalf("partial record lost: %+v", recs[0])
	}
	if recs[1].Err != "died after a" {
		t.Fatalf("error record %+v", recs[1])
	}
}

func TestPanicClassified(t *testing.T) {
	r := &Runner{Workers: 1, Retries: 3}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		panic("wedged")
	}}})
	if attempts != 1 {
		t.Fatalf("panics must not retry (%d attempts)", attempts)
	}
	if len(recs) != 1 || recs[0].Err != "panic: wedged" || recs[0].ErrClass != "panic" {
		t.Fatalf("records %+v", recs)
	}
}

func TestUnclassifiedErrorsMixed(t *testing.T) {
	recs := []Record{
		{Experiment: "e", Cell: "ok"},
		{Experiment: "e", Cell: "injected", Err: "fault", ErrClass: "injected"},
		{Experiment: "e", Cell: "real", Err: "bug"},
	}
	err := UnclassifiedErrors(recs)
	if err == nil {
		t.Fatal("unclassified failure must surface")
	}
	if got := err.Error(); got != "e/real: bug" {
		t.Fatalf("error %q", got)
	}
}

// TestBackoffAbortsOnCancel pins the context-aware wait: a worker sleeping
// out a retry backoff wakes immediately when the runner's context is
// cancelled and settles the cell with its last error instead of retrying.
func TestBackoffAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		Workers: 1, Retries: 3,
		Backoff: 10 * time.Second, // would block the worker for seconds if the wait ignored ctx
		Ctx:     ctx,
	}
	attempts := 0
	done := make(chan []Record, 1)
	start := time.Now()
	go func() {
		done <- r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
			attempts++
			return nil, &transientErr{msg: "brownout"}
		}}})
	}()
	time.Sleep(20 * time.Millisecond) // let the worker enter the backoff wait
	cancel()
	select {
	case recs := <-done:
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancellation took %v; the wait ignored the context", elapsed)
		}
		if attempts != 1 {
			t.Fatalf("%d attempts after cancel, want 1", attempts)
		}
		if len(recs) != 1 || recs[0].ErrClass != "injected" {
			t.Fatalf("records %+v", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runner still blocked in backoff 5s after cancellation")
	}
}

// TestCancelledContextSkipsRetries pins that a context cancelled during a
// cell's first attempt prevents further attempts outright (no wait at
// all): the retry decision observes the dead context.
func TestCancelledContextSkipsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Workers: 1, Retries: 5, Backoff: time.Hour, Ctx: ctx}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		cancel() // dies mid-attempt; the retry decision must see it
		return nil, &transientErr{msg: "down"}
	}}})
	if attempts != 1 {
		t.Fatalf("%d attempts under a dead context, want 1", attempts)
	}
	if len(recs) != 1 || recs[0].Err == "" {
		t.Fatalf("records %+v", recs)
	}
}

// TestPreCancelledContextSkipsCells pins the between-cell contract: a
// context already dead before Run means no cell body executes at all —
// every cell settles with a classified "canceled" record.
func TestPreCancelledContextSkipsCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Workers: 1, Retries: 5, Backoff: time.Hour, Ctx: ctx}
	attempts := 0
	recs := r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		return nil, &transientErr{msg: "down"}
	}}})
	if attempts != 0 {
		t.Fatalf("%d attempts under a pre-dead context, want 0", attempts)
	}
	if len(recs) != 1 || recs[0].ErrClass != "canceled" {
		t.Fatalf("records %+v, want one canceled record", recs)
	}
}

// TestHooksFireInOrder pins the lifecycle hook contract: start, one retry
// per transient failure (with the wait about to begin), then end with the
// total attempts and the cell's records.
func TestHooksFireInOrder(t *testing.T) {
	var events []string
	r := &Runner{
		Workers: 1, Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
		Hooks: Hooks{
			CellStart: func(c Cell) { events = append(events, "start:"+c.Name) },
			CellAttempt: func(c Cell, attempt int) {
				events = append(events, fmt.Sprintf("attempt:%s:%d", c.Name, attempt))
			},
			CellRetry: func(c Cell, attempt int, err error, wait time.Duration) {
				events = append(events, fmt.Sprintf("retry:%s:%d", c.Name, attempt))
			},
			CellEnd: func(c Cell, recs []Record, wall time.Duration, attempts int) {
				events = append(events, fmt.Sprintf("end:%s:%d:%d", c.Name, attempts, len(recs)))
			},
		},
	}
	attempts := 0
	r.Run([]Cell{{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
		attempts++
		if attempts < 3 {
			return nil, &transientErr{msg: "flaky"}
		}
		return []Record{{Experiment: "e", Cell: "c"}}, nil
	}}})
	want := []string{
		"start:c", "attempt:c:1", "retry:c:1", "attempt:c:2",
		"retry:c:2", "attempt:c:3", "end:c:3:1",
	}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
}
