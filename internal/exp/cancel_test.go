package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunnerCtxCancelBetweenCells is the regression test for between-cell
// cancellation: once the Runner's Ctx dies, the remaining cells must not
// run at all — each settles with a classified "canceled" record — instead
// of the old behavior of running every remaining cell to completion.
func TestRunnerCtxCancelBetweenCells(t *testing.T) {
	const n = 8
	const cancelAfter = 3
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	var ran atomic.Int64
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Experiment: "cancel",
			Name:       fmt.Sprintf("cell%d", i),
			Run: func() ([]Record, error) {
				ran.Add(1)
				if i == cancelAfter-1 {
					cancel(errors.New("drain deadline"))
				}
				return []Record{{Experiment: "cancel", Cell: fmt.Sprintf("cell%d", i),
					Values: map[string]float64{"i": float64(i)}}}, nil
			},
		}
	}
	var ends atomic.Int64
	r := &Runner{Workers: 1, Ctx: ctx, Hooks: Hooks{
		CellEnd: func(c Cell, recs []Record, _ time.Duration, attempts int) {
			ends.Add(1)
		},
	}}
	recs := r.Run(cells)

	if got := ran.Load(); got != cancelAfter {
		t.Fatalf("ran %d cell bodies, want %d (cells after cancellation must not run)", got, cancelAfter)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d (skipped cells still contribute records)", len(recs), n)
	}
	for i, rec := range recs {
		if i < cancelAfter {
			if rec.Err != "" {
				t.Errorf("cell %d: unexpected error %q", i, rec.Err)
			}
			continue
		}
		if rec.ErrClass != "canceled" {
			t.Errorf("cell %d: ErrClass = %q, want \"canceled\" (err %q)", i, rec.ErrClass, rec.Err)
		}
		if rec.Cell != fmt.Sprintf("cell%d", i) {
			t.Errorf("cell %d: identity %q lost on skip", i, rec.Cell)
		}
	}
	if got := ends.Load(); got != n {
		t.Errorf("CellEnd fired %d times, want %d (skipped cells must still settle)", got, n)
	}
}

// TestRunnerCtxCancelParallel pins the same contract on the parallel path:
// after cancellation no new cell bodies start, every cell still gets a
// record, and records stay in cell order.
func TestRunnerCtxCancelParallel(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Experiment: "cancel",
			Name:       fmt.Sprintf("cell%d", i),
			Run: func() ([]Record, error) {
				ran.Add(1)
				if i == 0 {
					cancel()
				}
				return []Record{{Experiment: "cancel", Cell: fmt.Sprintf("cell%d", i)}}, nil
			},
		}
	}
	r := &Runner{Workers: 4, Ctx: ctx}
	recs := r.Run(cells)
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	// At most Workers cells can already be in flight when the first cell
	// cancels; everything else must be shed.
	if got := ran.Load(); got > 8 {
		t.Errorf("%d cell bodies ran after a cancellation in cell 0 (want <= workers+slack)", got)
	}
	canceled := 0
	for i, rec := range recs {
		if rec.Cell != fmt.Sprintf("cell%d", i) {
			t.Fatalf("record %d out of cell order: %q", i, rec.Cell)
		}
		if rec.ErrClass == "canceled" {
			canceled++
		}
	}
	if canceled < n-8 {
		t.Errorf("only %d/%d records classified canceled", canceled, n)
	}
}

// TestRunnerNilCtxUnchanged pins that the dormant case (no Ctx) still runs
// every cell — the new check must cost nothing when unused.
func TestRunnerNilCtxUnchanged(t *testing.T) {
	var ran atomic.Int64
	cells := make([]Cell, 5)
	for i := range cells {
		cells[i] = Cell{Experiment: "e", Name: "c", Run: func() ([]Record, error) {
			ran.Add(1)
			return nil, nil
		}}
	}
	(&Runner{Workers: 2}).Run(cells)
	if ran.Load() != 5 {
		t.Fatalf("ran %d cells, want 5", ran.Load())
	}
}

// TestCanceledErrorClass pins the classification contract the service
// relies on.
func TestCanceledErrorClass(t *testing.T) {
	err := &CanceledError{Err: context.Canceled}
	if Classify(err) != "canceled" {
		t.Fatalf("Classify(CanceledError) = %q, want canceled", Classify(err))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("CanceledError must unwrap to its cause")
	}
	if (&CanceledError{}).Error() != "canceled" {
		t.Fatalf("zero-cause Error() = %q", (&CanceledError{}).Error())
	}
}
