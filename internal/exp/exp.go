// Package exp is the experiment execution pipeline: it separates what an
// experiment computes from how the result is presented. Experiments are
// decomposed into independent Cells — self-contained, deterministically
// seeded units of work such as "one Fig 3 workload row" or "one
// (scenario, engine) attack campaign" — and a Runner executes them on a
// bounded worker pool. Cells communicate only through their seeds, so a
// parallel run is byte-identical to a serial run: the Runner's one hard
// invariant.
//
// Results are typed Records (identity labels + numeric values), never
// printed tables; table renderers and the JSON encoder layer on top. This
// is the machine-readable output path that lets tooling consume
// experiment trajectories directly instead of scraping formatted text.
package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Record is one experiment result: the cell's identity plus its measured
// quantities. Maps keep renderers generic; encoding/json sorts map keys,
// so serialized records are deterministic.
type Record struct {
	// Experiment names the figure/table the record belongs to (fig3, ...).
	Experiment string `json:"experiment"`
	// Cell identifies the producing cell within the experiment, e.g.
	// "perlbench" or "listing1/staticrand".
	Cell string `json:"cell"`
	// Labels carry the cell's categorical identity (workload, scheme,
	// variant, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Values carry the measured numeric quantities.
	Values map[string]float64 `json:"values,omitempty"`
	// Err is the cell's failure, if any ("" = success). Failed cells
	// surface here instead of aborting the whole experiment.
	Err string `json:"err,omitempty"`
}

// Value returns the named value (0 when absent).
func (r Record) Value(name string) float64 { return r.Values[name] }

// Label returns the named label ("" when absent).
func (r Record) Label(name string) string { return r.Labels[name] }

// Cell is one independent unit of experiment work. Run must be
// self-contained: any randomness must derive from seeds captured at cell
// construction, never from shared mutable streams, so that execution
// order cannot influence the result.
type Cell struct {
	// Experiment and Name identify the cell (and its error records).
	Experiment string
	Name       string
	// Run computes the cell's records.
	Run func() ([]Record, error)
}

// Runner executes cells on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent cells; <= 0 selects GOMAXPROCS, 1 is
	// strictly serial.
	Workers int
}

// workers resolves the effective pool size for n cells.
func (r *Runner) workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if r != nil && r.Workers > 0 {
		w = r.Workers
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every cell and returns the records flattened in cell
// order — the order is a function of the input alone, never of
// scheduling. A cell that returns an error (or panics) contributes a
// single Record carrying its identity and the failure; the other cells
// still run.
func (r *Runner) Run(cells []Cell) []Record {
	perCell := make([][]Record, len(cells))
	w := r.workers(len(cells))
	if w == 1 {
		for i := range cells {
			perCell[i] = runCell(cells[i])
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(cells) {
						return
					}
					perCell[i] = runCell(cells[i])
				}
			}()
		}
		wg.Wait()
	}
	var out []Record
	for _, recs := range perCell {
		out = append(out, recs...)
	}
	return out
}

// runCell executes one cell, converting errors and panics into an error
// record so one bad cell cannot take down the figure.
func runCell(c Cell) (recs []Record) {
	defer func() {
		if p := recover(); p != nil {
			recs = []Record{{Experiment: c.Experiment, Cell: c.Name, Err: fmt.Sprintf("panic: %v", p)}}
		}
	}()
	recs, err := c.Run()
	if err != nil {
		return []Record{{Experiment: c.Experiment, Cell: c.Name, Err: err.Error()}}
	}
	return recs
}

// Filter returns the records belonging to one experiment, preserving
// order.
func Filter(recs []Record, experiment string) []Record {
	var out []Record
	for _, r := range recs {
		if r.Experiment == experiment {
			out = append(out, r)
		}
	}
	return out
}

// Errors joins every failed record into one error carrying the cell
// identities, or nil when all cells succeeded.
func Errors(recs []Record) error {
	var errs []error
	for _, r := range recs {
		if r.Err != "" {
			errs = append(errs, fmt.Errorf("%s/%s: %s", r.Experiment, r.Cell, r.Err))
		}
	}
	return errors.Join(errs...)
}

// WriteJSON emits records as JSON lines (one object per line), the
// machine-readable form of every table and figure. Map keys serialize
// sorted, so output bytes are deterministic for deterministic records.
func WriteJSON(w io.Writer, recs []Record) error {
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
