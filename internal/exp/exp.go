// Package exp is the experiment execution pipeline: it separates what an
// experiment computes from how the result is presented. Experiments are
// decomposed into independent Cells — self-contained, deterministically
// seeded units of work such as "one Fig 3 workload row" or "one
// (scenario, engine) attack campaign" — and a Runner executes them on a
// bounded worker pool. Cells communicate only through their seeds, so a
// parallel run is byte-identical to a serial run: the Runner's one hard
// invariant.
//
// Results are typed Records (identity labels + numeric values), never
// printed tables; table renderers and the JSON encoder layer on top. This
// is the machine-readable output path that lets tooling consume
// experiment trajectories directly instead of scraping formatted text.
package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one experiment result: the cell's identity plus its measured
// quantities. Maps keep renderers generic; encoding/json sorts map keys,
// so serialized records are deterministic.
type Record struct {
	// Experiment names the figure/table the record belongs to (fig3, ...).
	Experiment string `json:"experiment"`
	// Cell identifies the producing cell within the experiment, e.g.
	// "perlbench" or "listing1/staticrand".
	Cell string `json:"cell"`
	// Labels carry the cell's categorical identity (workload, scheme,
	// variant, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Values carry the measured numeric quantities.
	Values map[string]float64 `json:"values,omitempty"`
	// Err is the cell's failure, if any ("" = success). Failed cells
	// surface here instead of aborting the whole experiment.
	Err string `json:"err,omitempty"`
	// ErrClass classifies Err ("" when Err is empty or unclassified):
	// errors implementing ErrorClass() string — notably injected faults —
	// report their class here so tooling can separate expected degradation
	// from genuine failures.
	ErrClass string `json:"err_class,omitempty"`
	// Attempts counts how many times the cell ran (0 on records from cells
	// that never needed a retry; >= 2 after transient-fault retries).
	Attempts int `json:"attempts,omitempty"`
}

// Value returns the named value (0 when absent).
func (r Record) Value(name string) float64 { return r.Values[name] }

// Label returns the named label ("" when absent).
func (r Record) Label(name string) string { return r.Labels[name] }

// Cell is one independent unit of experiment work. Run must be
// self-contained: any randomness must derive from seeds captured at cell
// construction, never from shared mutable streams, so that execution
// order cannot influence the result.
type Cell struct {
	// Experiment and Name identify the cell (and its error records).
	Experiment string
	Name       string
	// Run computes the cell's records.
	Run func() ([]Record, error)
}

// Classify extracts an error's classification: the innermost error in the
// chain implementing ErrorClass() string decides ("" when none does).
func Classify(err error) string {
	var c interface{ ErrorClass() string }
	if errors.As(err, &c) {
		return c.ErrorClass()
	}
	return ""
}

// IsTransient reports whether any error in the chain declares itself
// transient (Transient() bool) — a retry under the same cell may succeed.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Runner executes cells on a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent cells; <= 0 selects GOMAXPROCS, 1 is
	// strictly serial.
	Workers int
	// Retries is the number of extra attempts a cell gets when it fails
	// with a transient error (IsTransient). 0 disables retries. Panics and
	// non-transient errors never retry.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per retry up
	// to BackoffCap. Zero means no sleep between attempts.
	Backoff    time.Duration
	BackoffCap time.Duration
	// Sleep overrides the between-attempt wait (tests use a recorder).
	// When set it is called instead of the context-aware timer wait, so a
	// recorder sees exactly the durations the default path would sleep.
	Sleep func(time.Duration)
	// Ctx, when non-nil, cancels retry waits and cell scheduling: a cell
	// sleeping between attempts wakes immediately on cancellation and emits
	// its error record instead of retrying, and cells that have not started
	// yet settle with a classified "canceled" record instead of running at
	// all — a cancelled grid stops at the next cell boundary rather than
	// running every remaining cell to completion. Already-running cell
	// bodies are not interrupted — cancellation is the cell body's own
	// concern (e.g. via a watchdog).
	Ctx context.Context
	// Hooks observe cell lifecycle (all optional; see Hooks).
	Hooks Hooks
}

// Hooks are optional observation points on the Runner's cell lifecycle.
// They exist so callers can attach telemetry (wall-time histograms, trace
// events) without the experiment pipeline importing a telemetry package.
// Hooks may be called concurrently from multiple workers and must be
// safe for that; nil fields are skipped.
type Hooks struct {
	// CellStart fires immediately before a cell's first attempt.
	CellStart func(c Cell)
	// CellAttempt fires immediately before every attempt (including the
	// first, after CellStart) with the 1-based attempt number about to
	// run. Observation layers use it to scope per-attempt context (span
	// IDs) without changing the Cell.Run signature.
	CellAttempt func(c Cell, attempt int)
	// CellRetry fires after a transient failure, before the backoff wait,
	// with the attempt number that just failed and the wait about to begin.
	CellRetry func(c Cell, attempt int, err error, wait time.Duration)
	// CellEnd fires after the cell settles (success, terminal failure,
	// cancelled retry wait, or skipped because the Runner's Ctx was already
	// cancelled) with its records, total wall time across all attempts, and
	// the number of attempts made (0 for skipped cells, whose CellStart
	// never fires). The streaming service relies on CellEnd firing for
	// every cell, settled or skipped, so a drained session still delivers
	// its full record set.
	CellEnd func(c Cell, recs []Record, wall time.Duration, attempts int)
}

// workers resolves the effective pool size for n cells.
func (r *Runner) workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if r != nil && r.Workers > 0 {
		w = r.Workers
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every cell and returns the records flattened in cell
// order — the order is a function of the input alone, never of
// scheduling. A cell that returns an error (or panics) keeps whatever
// records it produced before failing and contributes one additional Record
// carrying its identity, the failure and its classification; the other
// cells still run. Transient failures retry per the Runner's policy.
//
// When the Runner's Ctx is cancelled, cells that have not started yet do
// not run: each settles immediately with one record classified "canceled"
// (CanceledError), so a cancelled grid's output still covers every cell —
// exactly which cells computed and which were shed is machine-readable.
// Cells already inside their Run body finish on their own terms (typically
// via a VM watchdog wired to the same context).
func (r *Runner) Run(cells []Cell) []Record {
	perCell := make([][]Record, len(cells))
	w := r.workers(len(cells))
	runOne := func(i int) {
		if r != nil && r.Ctx != nil && r.Ctx.Err() != nil {
			perCell[i] = r.skipCanceled(cells[i])
			return
		}
		perCell[i] = r.runCell(cells[i])
	}
	if w == 1 {
		for i := range cells {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(cells) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	var out []Record
	for _, recs := range perCell {
		out = append(out, recs...)
	}
	return out
}

// CanceledError classifies a failure as "canceled": the work was shed
// because its supervising context ended, not because it computed and
// failed. The Runner emits it for cells skipped after cancellation; cell
// bodies wrap watchdog cancellations in it so their records classify the
// same way.
type CanceledError struct{ Err error }

func (e *CanceledError) Error() string {
	if e.Err == nil {
		return "canceled"
	}
	return "canceled: " + e.Err.Error()
}

func (e *CanceledError) Unwrap() error      { return e.Err }
func (e *CanceledError) ErrorClass() string { return "canceled" }

// skipCanceled settles a cell that never started because the Runner's Ctx
// was already cancelled: one classified record, no CellStart (the cell
// never ran), CellEnd with zero attempts.
func (r *Runner) skipCanceled(c Cell) []Record {
	err := &CanceledError{Err: context.Cause(r.Ctx)}
	recs := []Record{{Experiment: c.Experiment, Cell: c.Name,
		Err: err.Error(), ErrClass: err.ErrorClass()}}
	if r.Hooks.CellEnd != nil {
		r.Hooks.CellEnd(c, recs, 0, 0)
	}
	return recs
}

// panicError carries a recovered cell panic as a classified error.
type panicError struct{ val any }

func (e *panicError) Error() string      { return fmt.Sprintf("panic: %v", e.val) }
func (e *panicError) ErrorClass() string { return "panic" }

// runCell executes one cell, converting errors and panics into an error
// record so one bad cell cannot take down the figure. Records produced
// before a failure are kept as partial results, with the error record
// appended. Failures that declare themselves transient retry up to Retries
// extra attempts, waiting Backoff (doubling, capped at BackoffCap) between
// attempts; the wait aborts promptly when Ctx is cancelled, in which case
// the cell settles with its last error instead of retrying.
func (r *Runner) runCell(c Cell) []Record {
	var retries int
	var backoff, backoffCap time.Duration
	var hooks Hooks
	ctx := context.Context(nil)
	sleep := func(d time.Duration) bool { return sleepCtx(ctx, d) }
	if r != nil {
		retries = r.Retries
		backoff, backoffCap = r.Backoff, r.BackoffCap
		ctx = r.Ctx
		hooks = r.Hooks
		if r.Sleep != nil {
			s := r.Sleep
			sleep = func(d time.Duration) bool { s(d); return true }
		}
	}
	if hooks.CellStart != nil {
		hooks.CellStart(c)
	}
	start := time.Now()
	finish := func(recs []Record, attempts int) []Record {
		if hooks.CellEnd != nil {
			hooks.CellEnd(c, recs, time.Since(start), attempts)
		}
		return recs
	}
	attempt := 0
	for {
		attempt++
		if hooks.CellAttempt != nil {
			hooks.CellAttempt(c, attempt)
		}
		recs, err := runCellOnce(c)
		if err == nil {
			if attempt > 1 {
				for i := range recs {
					recs[i].Attempts = attempt
				}
			}
			return finish(recs, attempt)
		}
		if attempt <= retries && IsTransient(err) && (ctx == nil || ctx.Err() == nil) {
			if hooks.CellRetry != nil {
				hooks.CellRetry(c, attempt, err, backoff)
			}
			ok := true
			if backoff > 0 {
				ok = sleep(backoff)
				backoff *= 2
				if backoffCap > 0 && backoff > backoffCap {
					backoff = backoffCap
				}
			}
			if ok {
				continue
			}
		}
		rec := Record{Experiment: c.Experiment, Cell: c.Name,
			Err: err.Error(), ErrClass: Classify(err)}
		if attempt > 1 {
			rec.Attempts = attempt
		}
		return finish(append(recs, rec), attempt)
	}
}

// sleepCtx waits for d or until ctx (which may be nil) is cancelled,
// reporting whether the full wait elapsed. Cancellation wakes the caller
// immediately — a worker never sits out the rest of a backoff on a run
// that has already been abandoned.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runCellOnce runs the cell body once with panic recovery; partial records
// are returned alongside the failure.
func runCellOnce(c Cell) (recs []Record, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{val: p}
		}
	}()
	return c.Run()
}

// Filter returns the records belonging to one experiment, preserving
// order.
func Filter(recs []Record, experiment string) []Record {
	var out []Record
	for _, r := range recs {
		if r.Experiment == experiment {
			out = append(out, r)
		}
	}
	return out
}

// Errors joins every failed record into one error carrying the cell
// identities, or nil when all cells succeeded.
func Errors(recs []Record) error {
	var errs []error
	for _, r := range recs {
		if r.Err != "" {
			errs = append(errs, fmt.Errorf("%s/%s: %s", r.Experiment, r.Cell, r.Err))
		}
	}
	return errors.Join(errs...)
}

// UnclassifiedErrors joins the failed records whose errors carry no
// classification — genuine failures, as opposed to expected injected
// faults — or returns nil when every failure is classified (or there are
// none). The fault-sweep CLI path exits 0 on partial success gated by this.
func UnclassifiedErrors(recs []Record) error {
	var errs []error
	for _, r := range recs {
		if r.Err != "" && r.ErrClass == "" {
			errs = append(errs, fmt.Errorf("%s/%s: %s", r.Experiment, r.Cell, r.Err))
		}
	}
	return errors.Join(errs...)
}

// WriteJSON emits records as JSON lines (one object per line), the
// machine-readable form of every table and figure. Map keys serialize
// sorted, so output bytes are deterministic for deterministic records.
func WriteJSON(w io.Writer, recs []Record) error {
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
