// dopdemo walks through the paper's Listing 1 end to end: a data-oriented
// programming attack chains virtual MOV/ADD instructions through a
// vulnerable dispatcher loop by repeatedly overflowing a stack buffer. The
// demo runs the exploit against the deterministic baseline (it lands
// first try) and against Smokestack (it misses, crashes, or trips the
// function-identifier guard).
//
//	go run ./examples/dopdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/vm"
)

func main() {
	scenario := attack.Listing1Scenario()
	prog := scenario.Program

	fmt.Println("The vulnerable program (paper Listing 1):")
	fmt.Println(prog.Source)

	// Benign run: result is 0 — the dispatcher's gadgets never fire.
	eng := layout.NewFixed()
	m := vm.New(prog.Prog, eng, &vm.Env{}, &vm.Options{TRNG: rng.SeededTRNG(1)})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("benign run under the fixed baseline prints: 0 (no attack)")

	// The attack: five crafted inputs that set req/step/size/ctr at their
	// known offsets above buf, executing MOV step,1337 then ADD size,step
	// three times — a tiny data-oriented program. Goal: result == 4011.
	fmt.Println("\n--- attack vs fixed layout ---")
	d := &attack.Deployment{Program: prog, Engine: layout.NewFixed(), TRNG: rng.SeededTRNG(2)}
	r := scenario.Run(d, 1)
	fmt.Println(r)

	fmt.Println("\n--- same attack vs smokestack+aes-10, 10 restarts allowed ---")
	src, err := rng.NewByName("aes-10", 3, rng.SeededTRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	ss := layout.NewSmokestack(prog.Prog, src, nil)
	d2 := &attack.Deployment{Program: prog, Engine: ss, TRNG: rng.SeededTRNG(4)}
	r2 := scenario.Run(d2, 10)
	fmt.Println(r2)

	fmt.Println("\nWhy: the attacker's payload encodes offsets learned from a probe run,")
	fmt.Println("but every invocation of dispatch() draws a fresh permutation from the")
	fmt.Println("P-BOX, so the writes land on the wrong locals — or on the permuted")
	fmt.Println("function-identifier slot, which the epilogue check detects.")
}
