// keyextract reproduces the ProFTPD CVE-2006-5815 DOP chain from the
// paper's §V-C: a MOV gadget loads the one unrandomized chain-base pointer,
// seven LOAD gadgets walk the randomized pointer chain, and a SEND gadget
// exfiltrates the OpenSSL private key — all while re-corrupting the
// dispatcher loop counter to keep the chain alive. It then demonstrates the
// RNG-prediction ablation: with a memory-state PRNG, even Smokestack falls.
//
//	go run ./examples/keyextract
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/attack/corpus"
	"repro/internal/layout"
	"repro/internal/rng"
)

func main() {
	scenario := attack.ProftpdScenario()
	fmt.Println("ProFTPD CVE-2006-5815 key-extraction chain (MOV + 7xLOAD + SEND),")
	fmt.Println("re-corrupting the command loop's 'pending' counter on every step:")
	fmt.Println()
	for _, engName := range []string{"fixed", "staticrand", "baserand", "smokestack+aes-10"} {
		eng, err := layout.NewByName(engName, scenario.Program.Prog, 21, rng.SeededTRNG(21))
		if err != nil {
			log.Fatal(err)
		}
		d := &attack.Deployment{Program: scenario.Program, Engine: eng, TRNG: rng.SeededTRNG(22)}
		fmt.Println(scenario.Run(d, 10))
	}

	fmt.Println()
	fmt.Println("Ablation: why the permutation RNG must resist memory disclosure.")
	fmt.Println("With the xorshift 'pseudo' source, the attacker reads the generator")
	fmt.Println("state from memory, replays the stream, and predicts the exact layout")
	fmt.Println("(and guard encoding) of the next invocation:")
	fmt.Println()
	p := corpus.Listing1()
	for _, scheme := range []string{"pseudo", "aes-10"} {
		src, err := rng.NewByName(scheme, 31, rng.SeededTRNG(31))
		if err != nil {
			log.Fatal(err)
		}
		eng := layout.NewSmokestack(p.Prog, src, nil)
		d := &attack.Deployment{Program: p, Engine: eng, TRNG: rng.SeededTRNG(32)}
		r := attack.PredictionScenario(eng).Run(d, 30)
		r.Scenario = "rng-predict/" + scheme
		fmt.Println(r)
	}
}
