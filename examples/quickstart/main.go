// Quickstart: compile a MiniC program, harden it with Smokestack, and see
// what the defense actually does — the frame layout changes on every
// invocation — plus what it costs under each randomness source.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const source = `
// A small program with a mix of locals: a buffer, scalars, and a struct.
struct stats { long count; long sum; int flags; };

long accumulate(long n) {
	char scratch[32];
	struct stats st;
	long limit;
	st.count = 0;
	st.sum = 0;
	st.flags = 0;
	limit = n;
	scratch[0] = 'x';
	for (long i = 1; i <= limit; i++) {
		st.sum += i;
		st.count++;
	}
	return st.sum + st.count + scratch[0] - 'x';
}

long main() {
	long total = 0;
	for (long round = 0; round < 50; round++) {
		total += accumulate(20);
	}
	print(total);
	return total;
}
`

func main() {
	prog, err := core.Build("quickstart.c", source)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Run under the deterministic baseline.
	base, err := prog.Run(core.RunConfig{Scheme: "fixed", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline   : exit=%d cycles=%.0f\n", base.Exit, base.Stats.Cycles)

	// 2. Run hardened: same answer, every invocation a fresh stack layout.
	hard, err := prog.Run(core.RunConfig{Scheme: "smokestack+aes-10", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smokestack : exit=%d cycles=%.0f (+%.1f%%)\n",
		hard.Exit, hard.Stats.Cycles,
		(hard.Stats.Cycles-base.Stats.Cycles)/base.Stats.Cycles*100)

	// 3. Watch the randomization: accumulate's frame over five invocations.
	fn, _ := prog.IR.FuncByName("accumulate")
	layouts, err := prog.FrameLayouts("smokestack+aes-10", "accumulate", 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naccumulate's frame over five invocations (offsets from frame base):")
	for i, fl := range layouts {
		fmt.Printf("  call %d:", i+1)
		for ai, a := range fn.Allocas {
			fmt.Printf("  %s@%-3d", a.Name, fl.Offsets[ai])
		}
		fmt.Printf("  guard@%d\n", fl.GuardOffset())
	}

	// 4. The cost spectrum of the four randomness sources.
	fmt.Println("\noverhead by randomness source:")
	for _, scheme := range []string{"smokestack+pseudo", "smokestack+aes-1", "smokestack+aes-10", "smokestack+rdrand"} {
		ovh, err := prog.Overhead(scheme, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %+6.1f%%\n", scheme, ovh)
	}
}
