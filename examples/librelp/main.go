// librelp reproduces the paper's §II-C case study: the CVE-2018-1000140
// snprintf misuse gives an attacker a write-at-chosen-offset primitive that
// reaches the caller's frame, de-randomizing and bypassing every
// compile-time stack defense — and only per-invocation randomization stops
// it.
//
//	go run ./examples/librelp
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/rng"
)

func main() {
	scenario := attack.LibrelpScenario()
	fmt.Println("CVE-2018-1000140 model: relpTcpChkPeerName accumulates snprintf's")
	fmt.Println("*would-be* length; once the offset passes the buffer, the size_t")
	fmt.Println("underflow turns every record into a raw write at allNames+offset.")
	fmt.Println("The exploit pumps the offset with truncated (harmless) records, then")
	fmt.Println("bridges into the caller lstnInit's frame and forges authLevel=7,")
	fmt.Println("lsnFlags=9 to trigger the private-key leak.")
	fmt.Println()

	for _, engName := range []string{"fixed", "staticrand", "padding", "baserand", "smokestack+aes-10"} {
		eng, err := layout.NewByName(engName, scenario.Program.Prog, 11, rng.SeededTRNG(11))
		if err != nil {
			log.Fatal(err)
		}
		d := &attack.Deployment{Program: scenario.Program, Engine: eng, TRNG: rng.SeededTRNG(12)}
		r := scenario.Run(d, 10)
		fmt.Println(r)
	}

	fmt.Println()
	fmt.Println("Static permutation and padding fall because the binary (or one probe)")
	fmt.Println("reveals their layout once and for all; base randomization falls because")
	fmt.Println("only relative distances matter. Smokestack re-draws both the callee's")
	fmt.Println("and the caller's layouts, so the bridge corrupts unpredictable state —")
	fmt.Println("usually including the encoded function identifier (detected).")
}
