# Build / verification entry points. `make ci` is the gate every change
# must pass: compile, vet, the full test suite under the race detector
# (the parallel experiment pipeline makes -race load-bearing), and the
# invariance suite re-run under the legacy switch interpreter so both
# execution tiers stay pinned to the same goldens.
GO ?= go

# The workload and harness packages run whole experiment grids; under
# -race they need far more than the 10-minute default.
RACE_TIMEOUT ?= 3600s

# Benchmark snapshot lineage: `make bench` writes BENCH_NEXT and
# `make bench-compare` diffs it against BENCH_PREV. Roll both forward when
# a PR lands a new snapshot; earlier snapshots stay in-tree for cross-PR
# comparison.
BENCH_PREV ?= BENCH_4.json
BENCH_NEXT ?= BENCH_5.json

.PHONY: ci build vet test race bench bench-compare smokebench invariance blocktier faults telemetry defenses pool service obsv

ci: build vet race invariance blocktier faults telemetry defenses pool service obsv smokebench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

# Invariance + tier differential under every execution tier. The plain run
# (block tier, the default) already happens inside `race`; this re-runs
# the golden-pinned suites with SMOKESTACK_EXEC=switch so an accelerated-
# tier bug can never hide behind a matching golden regeneration — the
# legacy interpreter must reproduce the exact same bytes.
invariance:
	$(GO) test -run 'TestCycleInvariance|TestRecordInvariance|TestTierDifferential' -count=1 .
	SMOKESTACK_EXEC=switch $(GO) test -run 'TestCycleInvariance|TestRecordInvariance' -count=1 .

# Block-tier gate: the block-formation property tests and cancellation /
# fault / profile regressions in internal/vm, the block slice of the
# differential grid, and the golden-pinned invariance suites re-run under
# SMOKESTACK_EXEC=block and =threaded — all three tiers must reproduce the
# recorded goldens byte-for-byte, un-regenerated.
blocktier:
	$(GO) test -run 'TestBlock|TestPrewarmBlockTier|TestCancelledRunProfileFlush|TestFaultedRunProfileFlush|TestShadowStack' -count=1 ./internal/vm/
	$(GO) test -run 'TestTierDifferential(Generated)?/[^/]+/[^/]+/block' -count=1 .
	SMOKESTACK_EXEC=block $(GO) test -run 'TestCycleInvariance|TestRecordInvariance' -count=1 .
	SMOKESTACK_EXEC=threaded $(GO) test -run 'TestCycleInvariance|TestRecordInvariance' -count=1 .

# Robustness gate: the fault-injection differential (fault-injected runs
# bit-identical across both execution tiers), the watchdog/cancellation
# suite, and the rng resilience tests — all under -race, since the
# watchdog's AfterFunc fires on a foreign goroutine — then the
# entropy-brownout sweep end-to-end: it must exit 0 with every failed cell
# classified (injected), no panics.
faults:
	$(GO) test -race -timeout $(RACE_TIMEOUT) \
		-run 'TestFaultInjection|TestWatchdog|TestRunContext' -count=1 \
		. ./internal/vm/
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/faultinject/ ./internal/rng/ ./internal/exp/
	$(GO) run ./cmd/dopbench -faults > /dev/null

# Observability gate. Dormancy: attaching a registry/tracer must change no
# record and no modeled cycle (profile reconciliation pins attribution to
# Stats.Cycles on both tiers; the harness test diffs observed vs dormant
# records; AllocsPerRun proves the hot paths allocate nothing extra). All
# under -race — the registry is written from every runner worker. Then an
# end-to-end smoke: `dopbench -metrics -trace` over the fault sweep must
# produce a parseable snapshot and trace (rendered via benchjson -metrics).
telemetry:
	$(GO) test -race -timeout $(RACE_TIMEOUT) \
		-run 'TestProfile|TestTelemetry|TestHealthOf|TestBackoffAbortsOnCancel|TestHooksFireInOrder|TestTracer|TestRegistry' -count=1 \
		./internal/vm/ ./internal/telemetry/ ./internal/rng/ ./internal/exp/ ./internal/harness/
	$(GO) run ./cmd/dopbench -faults -metrics /tmp/smokestack-metrics.json -trace /tmp/smokestack-trace.jsonl > /dev/null
	$(GO) run ./cmd/benchjson -metrics /tmp/smokestack-metrics.json > /dev/null

# Session-observability gate. Under -race: span-mode dormancy (a session
# run with tracing, labeled metrics, CellDone capture and an audit sink
# streams records byte-identical to the bare run), trace-tree
# reconciliation (every run span's rows sum to its recorded total and the
# folded per-cell totals equal the flight/snapshot totals, bit-for-bit),
# label-cardinality bounds under a tenant flood, the hardened trace/audit
# readers, and the flight-recorder ring + goroutine-leak checks. Then two
# end-to-end passes: the smokestackd -selftest observability cycle (traced
# canary detection → flight record → folded trace → audit log, dormant
# twin byte-identical), and a span-mode dopbench trace folded through
# benchjson -tracetree, which exits non-zero on any reconciliation
# mismatch.
obsv:
	$(GO) test -race -timeout $(RACE_TIMEOUT) -count=1 \
		-run 'TestSpanMode|TestAuditDetection|TestLabel|TestPrometheus|TestReadTraceTruncated|TestSpanEvent|TestSpanIdentity|TestFoldTrace|TestReconcile|TestMergeRows|TestAuditSink|TestSweepLabels|TestTracedSession|TestFlightRecorder|TestStatsJSONShape|TestLabeledMetrics' \
		./internal/telemetry/ ./internal/harness/ ./internal/server/
	$(GO) run ./cmd/smokestackd -addr 127.0.0.1:0 -selftest > /dev/null
	$(GO) run ./cmd/dopbench -exp fig4 -trace /tmp/smokestack-spans.jsonl > /dev/null
	$(GO) run ./cmd/benchjson -tracetree /tmp/smokestack-spans.jsonl > /dev/null

# Defense-zoo gate: the registry/layout property tests (every registered
# engine × random frames), the cross-defense matrix smoke (overhead +
# entropy + full attack corpus for the three zoo engines), and the
# tier-differential suite restricted to the zoo — the full differential
# grid already runs in `invariance`; this subset re-runs fast after
# layout-engine edits. Ends with the matrix itself rendered end-to-end
# through dopbench -engines.
defenses:
	$(GO) test -run 'TestEngineLayoutProperties|TestUnknownEngineError|TestDefensesSmoke|TestDefensesRowOrder' -count=1 ./internal/harness/
	$(GO) test -run 'TestTierDifferential/[^/]+/(cleanstack|shadowstack|stackato)' -count=1 .
	$(GO) run ./cmd/dopbench -exp defenses -engines cleanstack,shadowstack,stackato > /dev/null

# Full benchmark sweep, snapshotted to $(BENCH_NEXT) (see cmd/benchjson).
# ns/op figures are host-dependent; the sim-instructions/op and
# model-cycles/op metrics are machine-independent modeled quantities.
# Earlier snapshots (BENCH_2.json, ...) are kept for cross-PR comparison.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -o $(BENCH_NEXT)

# Per-benchmark deltas between $(BENCH_PREV) and $(BENCH_NEXT); exits
# non-zero when a metric regresses past the threshold. The gate is scoped
# (-only) to the VM executor benchmarks a dispatch-level change targets:
# snapshots are recorded on whatever host ran `make bench`, and the
# host-bound benchmarks cannot diff meaningfully across machines —
# Table1/rdrand measures the CPU's RDRAND latency (4-16ns depending on
# part), and the attack benchmarks (Pentest/*, CVE/*) spend ~95% of their
# time zeroing a fresh heap per attempt and swing ±40% with host allocator
# state. Within scope, 35% leaves headroom for scheduler noise while a
# genuine dispatch-level regression shows up as 1.5-2x. The -zeroalloc
# gate additionally requires the pooled reset path to report 0 allocs/op
# and 0 B/op in the new snapshot — allocation creep there is a regression
# no matter how small the percentage.
bench-compare:
	$(GO) run ./cmd/benchjson -diff -threshold 35 \
		-only 'VMThroughput|VMWorkloads|MemAccess' \
		-zeroalloc 'RunSetup/reset' $(BENCH_PREV) $(BENCH_NEXT)

# Single-iteration pass over the hot-path benchmarks: catches benchmarks
# that stopped compiling or started failing without paying for steady-state
# timing. Part of `make ci`.
smokebench:
	$(GO) test -bench='VMThroughput|VMWorkloads|MemAccess|Table1|RunSetup' \
		-benchtime=1x -run='^$$' .

# Service gate: build smokestackd, run its endpoint smoke end-to-end
# against a live listener (submit → stream → drain via -selftest), then
# the full server suite — admission/backpressure units, the chaos suite
# (typed errors only, no goroutine leaks, drain under load, byte parity
# with the offline pipeline), the fuzz seed corpus, the session layer,
# and the MachinePool race hammer — all under -race, since every piece
# is written from concurrent request goroutines.
service:
	$(GO) build -o /dev/null ./cmd/smokestackd
	$(GO) run ./cmd/smokestackd -addr 127.0.0.1:0 -selftest > /dev/null
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/server/
	$(GO) test -race -timeout $(RACE_TIMEOUT) -count=1 \
		-run 'TestSession|TestRunnerCtxCancel|TestPreCancelledContextSkipsCells|TestMachinePoolRaceHammer' \
		./internal/harness/ ./internal/exp/ ./internal/vm/

# Machine-reuse gate: the Reset-vs-New differentials and snapshot/restore
# suites (vm, mem), the registry-wide state-leak matrix, and the
# pooled-vs-unpooled record differential — under -race, since the pool is
# shared across the runner's workers.
pool:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/vm ./internal/mem
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/harness \
		-run 'TestPooledMatchesUnpooled|TestMachineReuseNoLeakAcrossEngines|TestRunOnceRetryReusesMachine'
