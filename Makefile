# Build / verification entry points. `make ci` is the gate every change
# must pass: compile, vet, and the full test suite under the race
# detector (the parallel experiment pipeline makes -race load-bearing).
GO ?= go

# The workload and harness packages run whole experiment grids; under
# -race they need far more than the 10-minute default.
RACE_TIMEOUT ?= 3600s

.PHONY: ci build vet test race bench smokebench

ci: build vet race smokebench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

# Full benchmark sweep, snapshotted to BENCH_2.json (see cmd/benchjson).
# ns/op figures are host-dependent; the sim-instructions/op and
# model-cycles/op metrics are machine-independent modeled quantities.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -o BENCH_2.json

# Single-iteration pass over the hot-path benchmarks: catches benchmarks
# that stopped compiling or started failing without paying for steady-state
# timing. Part of `make ci`.
smokebench:
	$(GO) test -bench='VMThroughput|VMWorkloads|MemAccess|Table1' \
		-benchtime=1x -run='^$$' .
