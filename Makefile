# Build / verification entry points. `make ci` is the gate every change
# must pass: compile, vet, and the full test suite under the race
# detector (the parallel experiment pipeline makes -race load-bearing).
GO ?= go

# The workload and harness packages run whole experiment grids; under
# -race they need far more than the 10-minute default.
RACE_TIMEOUT ?= 3600s

.PHONY: ci build vet test race bench

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
