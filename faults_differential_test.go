// Differential oracle for the fault-injection layer: a fault-injected run
// must stay bit-for-bit identical across the two execution tiers, because
// every injection point is tier-shared (TRNG draws outside the dispatch
// loops, the host-call wrapper). Each case builds one Injector per tier
// from the same Plan and compares everything diffTiers compares — return,
// error text, exact Stats bits, memory digest. Divergence here means an
// injection point leaked into tier-specific code, which would make fault
// experiments unreproducible across tiers.

package repro

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/rng"
	"repro/internal/vm"
)

// faultDiffSrc is host-call dense (outbyte + readint every round) and
// call dense (work() every round), so entropy, delay, corruption and
// host-fault schedules all land mid-run.
const faultDiffSrc = `
long work(long n) {
	long acc;
	long i;
	acc = 0;
	i = 0;
	while (i < n) {
		acc = acc + i * 5 - (i & 3);
		i = i + 1;
	}
	return acc;
}

long main() {
	long total;
	long r;
	total = 0;
	r = 0;
	while (r < 120) {
		total = total + work(12);
		total = total + readint();
		outbyte(total & 255);
		r = r + 1;
	}
	print(total);
	return total & 65535;
}
`

// faultDiffPlans sweeps the schedule shapes: entropy brownout alone,
// delays plus return corruption, a mid-run host fault, and a blackout
// that kills the run before main.
func faultDiffPlans(seed uint64) map[string]faultinject.Plan {
	brownout := faultinject.NewBrownoutPlan(seed, 16, 3)
	corrupt := faultinject.Plan{
		Seed:           seed,
		HostDelayEvery: 7, HostDelayCycles: 1500,
		HostCorruptEvery: 11, HostCorruptXOR: 0x5a,
	}
	hostfault := faultinject.Plan{Seed: seed, HostFaultEvery: 101}
	blackout := faultinject.NewBrownoutPlan(seed, 1, 1)
	return map[string]faultinject.Plan{
		"brownout": brownout, "corrupt": corrupt,
		"hostfault": hostfault, "blackout": blackout,
	}
}

// runTierFaulted mirrors runTier with a fresh Injector wired into every
// injection point. Construction failures (blackout killing engine or
// guard-key seeding) are captured as results, not test failures — both
// tiers must report them identically.
func runTierFaulted(t *testing.T, scheme string, seed uint64, plan faultinject.Plan, tier vm.ExecTier) tierResult {
	t.Helper()
	prog := compile.MustCompile("faultdiff.c", faultDiffSrc)
	inj := faultinject.New(plan)
	eng, err := layout.NewByName(scheme, prog, seed, inj.WrapTRNG(rng.SeededTRNG(seed)))
	if err != nil {
		return tierResult{errStr: err.Error()}
	}
	env := &vm.Env{}
	m := vm.New(prog, eng, env, &vm.Options{
		TRNG:      inj.WrapTRNG(rng.SeededTRNG(seed ^ 0xabc)),
		StepLimit: 50_000_000,
		Exec:      tier,
		HostHook:  inj,
	})
	v, rerr := m.Run()
	res := tierResult{ret: v, stats: m.Stats()}
	if rerr != nil {
		res.errStr = rerr.Error()
	}
	h := sha256.New()
	for _, s := range m.Mem.Segments() {
		if s.Name == "heap" {
			if used := res.stats.HeapUsed; used > 0 {
				fmt.Fprintf(h, "heap:%d\n", used)
				h.Write(s.Bytes()[:used])
			}
			continue
		}
		fmt.Fprintf(h, "%s:%d\n", s.Name, s.Size())
		h.Write(s.Bytes())
	}
	h.Write(env.Output)
	copy(res.digest[:], h.Sum(nil))
	return res
}

// TestFaultInjectionTierDifferential pins fault-injected executions across
// both tiers for every engine family and schedule shape.
func TestFaultInjectionTierDifferential(t *testing.T) {
	for _, scheme := range differentialEngines {
		for name, plan := range faultDiffPlans(0xfa17) {
			scheme, name, plan := scheme, name, plan
			t.Run(scheme+"/"+name, func(t *testing.T) {
				t.Parallel()
				seed := uint64(0xfa17<<16) ^ uint64(len(scheme)*31+len(name))
				diffTiers(t,
					runTierFaulted(t, scheme, seed, plan, vm.TierCompiled),
					runTierFaulted(t, scheme, seed, plan, vm.TierSwitch))
			})
		}
	}
}

// TestFaultInjectionReplay pins that equal plans replay identically within
// one tier — the property that makes a fault experiment reportable by
// (seed, plan) alone.
func TestFaultInjectionReplay(t *testing.T) {
	for name, plan := range faultDiffPlans(0xbeef) {
		name, plan := name, plan
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a := runTierFaulted(t, "smokestack+aes-10", 0x1234, plan, vm.TierCompiled)
			b := runTierFaulted(t, "smokestack+aes-10", 0x1234, plan, vm.TierCompiled)
			diffTiers(t, a, b)
		})
	}
}

// TestFaultInjectionPerturbs sanity-checks that the schedules actually
// change the execution relative to a clean run (otherwise the differential
// above would pass vacuously).
func TestFaultInjectionPerturbs(t *testing.T) {
	clean := runTierFaulted(t, "smokestack+aes-10", 0x1234, faultinject.Plan{}, vm.TierCompiled)
	if clean.errStr != "" {
		t.Fatalf("clean run failed: %s", clean.errStr)
	}
	perturbed := 0
	for name, plan := range faultDiffPlans(0xbeef) {
		r := runTierFaulted(t, "smokestack+aes-10", 0x1234, plan, vm.TierCompiled)
		if r.errStr != "" || r.stats.Cycles != clean.stats.Cycles || r.digest != clean.digest {
			perturbed++
		} else {
			t.Logf("plan %s left the run untouched", name)
		}
	}
	if perturbed == 0 {
		t.Fatal("no schedule perturbed the run; differential test is vacuous")
	}
}
